"""The WikiSQL-style training domains.

Ten topical domains, each with a five-column schema, per-column mention
surfaces (synonyms/paraphrases), and idiomatic templates that reproduce
the paper's running examples (Figure 1, Figure 2, Figure 5, Table I).

Every column carries an explicit semantic :class:`~repro.data.roles.Role`
(identifier / measure / timestamp / category / text); the role-matched
intent generators in :mod:`repro.data.intents` key off these rather
than off domain names, so the same generators cover the held-out
transfer schemas below.

The OVERNIGHT-style transfer domains (basketball, calendar, housing,
recipes, restaurants) are deliberately *excluded* here so zero-shot
transfer evaluation is honest.
"""

from __future__ import annotations

from repro.sqlengine import Aggregate, Operator
from repro.sqlengine.types import DataType

from repro.data import pools
from repro.data.roles import Role
from repro.data.template import ColumnSpec, DomainSpec, QuestionTemplate

__all__ = ["training_domains", "held_out_domains", "generic_templates",
           "make_template"]

EQ, GT, LT = Operator.EQ, Operator.GT, Operator.LT
TEXT, REAL = DataType.TEXT, DataType.REAL
ID, CAT, TS = Role.IDENTIFIER, Role.CATEGORY, Role.TIMESTAMP

_ADJECTIVES = ["silent", "golden", "broken", "hidden", "crimson", "lonely",
               "electric", "frozen", "burning", "midnight"]
_NOUNS = ["river", "horizon", "promise", "garden", "mirror", "harbor",
          "letters", "kingdom", "voyage", "shadows"]

_title = pools.compound(pools.enum(["the"]), pools.enum(_ADJECTIVES),
                        pools.enum(_NOUNS))


def make_template(segments, aggregate=Aggregate.NONE, operators=(), select=None,
                  cond_columns=None, select_dtype=None) -> QuestionTemplate:
    """Convenience constructor for :class:`QuestionTemplate`."""
    return QuestionTemplate(
        segments=list(segments),
        aggregate=aggregate,
        operators=list(operators),
        select=select,
        cond_columns=list(cond_columns) if cond_columns else [],
        select_dtype=select_dtype,
    )


_t = make_template


def generic_templates(entity: str, key_column: str) -> list[QuestionTemplate]:
    """Domain-independent templates instantiated for one domain.

    ``entity`` is the head noun ("film", "county"); ``key_column`` is
    the identifier column used as the COUNT target.
    """
    return [
        # SELECT with one equality condition — several phrasings.
        _t([("text", "what is the"), ("sel", None), ("text", "of the"),
            ("text", entity), ("text", "with"), ("col", 0), ("val", 0),
            ("text", "?")], operators=[EQ]),
        _t([("text", "which"), ("sel", None), ("text", "has"), ("col", 0),
            ("val", 0), ("text", "?")], operators=[EQ]),
        _t([("text", "name the"), ("sel", None), ("text", "when the"),
            ("col", 0), ("text", "is"), ("val", 0)], operators=[EQ]),
        _t([("text", "tell me the"), ("sel", None), ("text", "for the"),
            ("text", entity), ("text", "whose"), ("col", 0), ("text", "is"),
            ("val", 0)], operators=[EQ]),
        # SELECT with two equality conditions.
        _t([("text", "what is the"), ("sel", None), ("text", "when the"),
            ("col", 0), ("text", "is"), ("val", 0), ("text", "and the"),
            ("col", 1), ("text", "is"), ("val", 1), ("text", "?")],
           operators=[EQ, EQ]),
        _t([("text", "which"), ("sel", None), ("text", "with"), ("col", 0),
            ("val", 0), ("text", "has"), ("col", 1), ("val", 1),
            ("text", "?")], operators=[EQ, EQ]),
        # Ordering conditions.
        _t([("text", "which"), ("sel", None), ("text", "has a"), ("col", 0),
            ("text", "over"), ("val", 0), ("text", "?")], operators=[GT]),
        _t([("text", "name the"), ("sel", None), ("text", "with a"),
            ("col", 0), ("text", "below"), ("val", 0)], operators=[LT]),
        # COUNT.
        _t([("text", f"how many {entity} records have"), ("col", 0),
            ("val", 0), ("text", "?")], aggregate=Aggregate.COUNT,
           operators=[EQ], select=key_column),
        _t([("text", f"count the {entity} entries where the"), ("col", 0),
            ("text", "is"), ("val", 0)], aggregate=Aggregate.COUNT,
           operators=[EQ], select=key_column),
        # MAX / MIN / SUM / AVG over numeric columns.
        _t([("text", "what is the highest"), ("sel", None), ("text", "?")],
           aggregate=Aggregate.MAX),
        _t([("text", "what is the largest"), ("sel", None),
            ("text", "when the"), ("col", 0), ("text", "is"), ("val", 0),
            ("text", "?")], aggregate=Aggregate.MAX, operators=[EQ]),
        _t([("text", "what is the lowest"), ("sel", None), ("text", "?")],
           aggregate=Aggregate.MIN),
        _t([("text", "what is the smallest"), ("sel", None),
            ("text", "with"), ("col", 0), ("val", 0), ("text", "?")],
           aggregate=Aggregate.MIN, operators=[EQ]),
        _t([("text", "what is the total"), ("sel", None), ("text", "for"),
            ("col", 0), ("val", 0), ("text", "?")],
           aggregate=Aggregate.SUM, operators=[EQ]),
        _t([("text", "what is the average"), ("sel", None),
            ("text", "when the"), ("col", 0), ("text", "is"), ("val", 0),
            ("text", "?")], aggregate=Aggregate.AVG, operators=[EQ]),
    ]


def _films() -> DomainSpec:
    columns = [
        ColumnSpec("film name", TEXT, _title,
                   ["film name", "film", "movie", "picture", "title"],
                   role=ID),
        ColumnSpec("director", TEXT, pools.person_name,
                   ["director", "directed by", "filmmaker"]),
        ColumnSpec("actor", TEXT, pools.person_name,
                   ["actor", "star", "starring", "actress"]),
        ColumnSpec("year", REAL, pools.year(1950, 2021), ["year", "season"],
                   role=TS),
        ColumnSpec("genre", TEXT,
                   pools.enum(["drama", "comedy", "thriller", "romance",
                               "documentary", "horror", "western"]),
                   ["genre", "kind of film", "category"], role=CAT),
    ]
    idiomatic = [
        # Figure 1(c): which film directed by X did Y star in ?
        _t([("text", "which"), ("selp", "film"), ("colp", (0, "directed by")),
            ("val", 0), ("text", "did"), ("val", 1), ("colp", (1, "star")),
            ("text", "in ?")], operators=[EQ, EQ],
           select="film name", cond_columns=["director", "actor"]),
        _t([("text", "who"), ("colp", (0, "directed")), ("text", "the"),
            ("text", "movie"), ("val", 0), ("text", "?")], operators=[EQ],
           select="director", cond_columns=["film name"]),
    ]
    return DomainSpec("films", "film", columns,
                      generic_templates("film", "film name") + idiomatic)


def _geography() -> DomainSpec:
    columns = [
        ColumnSpec("county", TEXT, pools.place_name,
                   ["county", "region", "district"], role=ID),
        ColumnSpec("english name", TEXT, pools.compound(
            pools.enum(["carrowteige", "aran islands", "bangor", "dingle",
                        "clifden", "belmullet", "spiddal", "gweedore"])),
                   ["english name", "english title"]),
        ColumnSpec("irish name", TEXT, pools.compound(
            pools.enum(["ceathru thaidhg", "oileain arann", "baingear",
                        "daingean", "an clochan", "beal an mhuirthead"])),
                   ["irish name", "irish title"]),
        ColumnSpec("population", REAL, pools.integer(100, 5000),
                   ["population", "number of residents", "inhabitants"]),
        ColumnSpec("area", REAL, pools.integer(10, 900),
                   ["area", "size"]),
    ]
    idiomatic = [
        # Figure 1(d): how many people live in X who have the english name Y ?
        _t([("selp", "how many people live in"), ("val", 0),
            ("text", "who have the"), ("colp", (1, "english name")),
            ("val", 1), ("text", "?")], operators=[EQ, EQ],
           select="population", cond_columns=["county", "english name"]),
        _t([("selp", "how many people live in"), ("text", "the place with"),
            ("colp", (0, "irish name")), ("val", 0), ("text", "?")],
           operators=[EQ], select="population", cond_columns=["irish name"]),
    ]
    return DomainSpec("geography", "place", columns,
                      generic_templates("place", "county") + idiomatic)


def _golf() -> DomainSpec:
    columns = [
        ColumnSpec("player", TEXT, pools.person_name,
                   ["player", "golfer", "athlete", "competitor"], role=ID),
        ColumnSpec("country", TEXT,
                   pools.enum(["northern ireland", "spain", "sweden",
                               "australia", "fiji", "south africa",
                               "argentina", "scotland"]),
                   ["country", "nation"], role=CAT),
        ColumnSpec("score", REAL, pools.integer(60, 80),
                   ["score", "result", "points"]),
        ColumnSpec("year won", REAL, pools.year(1980, 2020),
                   ["year won", "winning year", "year of victory"], role=TS),
        ColumnSpec("prize money", REAL, pools.integer(10000, 2000000),
                   ["prize money", "earnings", "payout"]),
    ]
    idiomatic = [
        # Table I: who is the golfer that golfs for Northern Ireland ?
        _t([("text", "who is the"), ("selp", "golfer that golfs"),
            ("text", "for"), ("val", 0), ("text", "?")], operators=[EQ],
           select="player", cond_columns=["country"]),
        _t([("text", "which"), ("selp", "golfer"), ("colp", (0, "won")),
            ("text", "in"), ("val", 0), ("text", "?")], operators=[EQ],
           select="player", cond_columns=["year won"]),
    ]
    return DomainSpec("golf", "player", columns,
                      generic_templates("player", "player") + idiomatic)


def _games() -> DomainSpec:
    team = pools.compound(pools.enum(PLACE_TEAMS), pools.enum(TEAM_NOUNS))
    columns = [
        ColumnSpec("date", TEXT, pools.date_text, ["date", "day"], role=ID),
        ColumnSpec("opponent", TEXT, team, ["opponent", "rival", "against"],
                   role=CAT),
        ColumnSpec("venue", TEXT, pools.place_name,
                   ["venue", "location", "stadium", "place"]),
        ColumnSpec("attendance", REAL, pools.integer(1000, 90000),
                   ["attendance", "crowd", "spectators"]),
        ColumnSpec("result", TEXT, pools.enum(["win", "loss", "draw"]),
                   ["result", "outcome"], role=CAT),
    ]
    idiomatic = [
        # Table I: when did the Baltimore Ravens play at home ?
        _t([("selp", "when did"), ("text", "the"), ("val", 0),
            ("text", "play at home ?")], operators=[EQ],
           select="date", cond_columns=["opponent"]),
        # Table I: where was the game played on 20 May ?
        _t([("selp", "where was"), ("text", "the game played on"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="venue", cond_columns=["date"]),
    ]
    return DomainSpec("games", "game", columns,
                      generic_templates("game", "date") + idiomatic)


PLACE_TEAMS = ["baltimore", "denver", "chicago", "dallas", "oakland",
               "seattle", "atlanta", "phoenix", "houston", "cleveland"]
TEAM_NOUNS = ["ravens", "eagles", "bears", "sharks", "wolves", "hawks",
              "titans", "comets", "rangers", "pirates"]


def _missions() -> DomainSpec:
    mission = pools.compound(
        pools.enum(["ares", "luna", "vega", "orion", "zenith", "aurora",
                    "pioneer", "meridian"]),
        pools.enum(["1", "2", "3", "4", "5", "7", "9", "11"]))
    columns = [
        ColumnSpec("mission", TEXT, mission, ["mission", "missions", "flight"],
                   role=ID),
        ColumnSpec("launch date", TEXT, pools.date_text,
                   ["launch date", "launch", "launched on", "lift off date"],
                   role=TS),
        ColumnSpec("crew size", REAL, pools.integer(1, 8),
                   ["crew size", "number of astronauts", "crew"]),
        ColumnSpec("duration days", REAL, pools.integer(1, 400),
                   ["duration days", "length in days", "duration"]),
        ColumnSpec("agency", TEXT,
                   pools.enum(["nasa", "esa", "jaxa", "isro", "roscosmos"]),
                   ["agency", "organization"], role=CAT),
    ]
    idiomatic = [
        # Figure 2: which missions were scheduled to launch on <date> ?
        _t([("text", "which"), ("selp", "missions"), ("text", "were"),
            ("colp", (0, "scheduled to launch on")), ("val", 0),
            ("text", "?")], operators=[EQ],
           select="mission", cond_columns=["launch date"]),
    ]
    return DomainSpec("missions", "mission", columns,
                      generic_templates("mission", "mission") + idiomatic)


def _music() -> DomainSpec:
    columns = [
        ColumnSpec("song", TEXT, _title, ["song", "track", "single", "tune"],
                   role=ID),
        ColumnSpec("artist", TEXT, pools.person_name,
                   ["artist", "singer", "musician", "performer"]),
        ColumnSpec("album", TEXT, _title, ["album", "record", "release"]),
        ColumnSpec("year", REAL, pools.year(1960, 2021), ["year"], role=TS),
        ColumnSpec("label", TEXT,
                   pools.enum(["northstar", "bluebird", "harbor", "sable",
                               "motif", "grange"]),
                   ["label", "record company"], role=CAT),
    ]
    idiomatic = [
        _t([("text", "who"), ("colp", (0, "sang")), ("text", "the song"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="artist", cond_columns=["song"]),
    ]
    return DomainSpec("music", "song", columns,
                      generic_templates("song", "song") + idiomatic)


def _elections() -> DomainSpec:
    columns = [
        ColumnSpec("candidate", TEXT, pools.person_name,
                   ["candidate", "nominee", "contender"], role=ID),
        ColumnSpec("party", TEXT,
                   pools.enum(["unionist", "federalist", "labour", "green",
                               "liberal", "reform"]),
                   ["party", "affiliation"], role=CAT),
        ColumnSpec("votes", REAL, pools.integer(500, 90000),
                   ["votes", "ballots", "number of votes"]),
        ColumnSpec("district", TEXT, pools.place_name,
                   ["district", "constituency", "area"]),
        ColumnSpec("year", REAL, pools.year(1990, 2021), ["year"], role=TS),
    ]
    idiomatic = [
        _t([("text", "which"), ("selp", "candidate"),
            ("text", "ran in the"), ("val", 0), ("colp", (0, "district")),
            ("text", "?")], operators=[EQ],
           select="candidate", cond_columns=["district"]),
        _t([("selp", "how many votes"), ("text", "did"), ("val", 0),
            ("text", "get ?")], operators=[EQ],
           select="votes", cond_columns=["candidate"]),
    ]
    return DomainSpec("elections", "candidate", columns,
                      generic_templates("election", "candidate") + idiomatic)


def _racing() -> DomainSpec:
    race = pools.compound(pools.enum(PLACE_TEAMS), pools.enum(["grand prix"]))
    columns = [
        ColumnSpec("race", TEXT, race, ["race", "grand prix", "event"],
                   role=ID),
        ColumnSpec("winning driver", TEXT, pools.person_name,
                   ["winning driver", "winner", "driver who won"]),
        ColumnSpec("team", TEXT,
                   pools.enum(["apex", "meteor", "vortex", "falcon",
                               "corsair", "ember"]),
                   ["team", "constructor"], role=CAT),
        ColumnSpec("laps", REAL, pools.integer(40, 80), ["laps", "circuits"]),
        ColumnSpec("date", TEXT, pools.date_text, ["date", "day"], role=TS),
    ]
    idiomatic = [
        # Figure 5: which driver won the <race> ?
        _t([("text", "which"), ("selp", "driver won"), ("text", "the"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="winning driver", cond_columns=["race"]),
        _t([("text", "who was the"), ("selp", "win"), ("text", "of the"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="winning driver", cond_columns=["race"]),
    ]
    return DomainSpec("racing", "race", columns,
                      generic_templates("race", "race") + idiomatic)


def _employees() -> DomainSpec:
    columns = [
        ColumnSpec("employee", TEXT, pools.person_name,
                   ["employee", "worker", "staff member"], role=ID),
        ColumnSpec("department", TEXT,
                   pools.enum(["engineering", "finance", "marketing",
                               "operations", "research", "legal"]),
                   ["department", "division", "unit"], role=CAT),
        ColumnSpec("salary", REAL, pools.integer(30000, 200000),
                   ["salary", "pay", "wage", "earnings"]),
        ColumnSpec("city", TEXT, pools.place_name, ["city", "town"]),
        ColumnSpec("hire year", REAL, pools.year(2000, 2021),
                   ["hire year", "year hired", "joining year"], role=TS),
    ]
    idiomatic = [
        _t([("selp", "how much does"), ("val", 0), ("text", "earn ?")],
           operators=[EQ], select="salary", cond_columns=["employee"]),
    ]
    return DomainSpec("employees", "employee", columns,
                      generic_templates("employee", "employee") + idiomatic)


def _books() -> DomainSpec:
    columns = [
        ColumnSpec("book", TEXT, _title, ["book", "novel", "title"], role=ID),
        ColumnSpec("author", TEXT, pools.person_name,
                   ["author", "writer", "written by", "novelist"]),
        ColumnSpec("publisher", TEXT,
                   pools.enum(["lighthouse", "foxglove", "quill", "arbor",
                               "latitude", "easel"]),
                   ["publisher", "publishing house"], role=CAT),
        ColumnSpec("year", REAL, pools.year(1900, 2021), ["year"], role=TS),
        ColumnSpec("pages", REAL, pools.integer(80, 1200),
                   ["pages", "length", "page count"]),
    ]
    idiomatic = [
        _t([("text", "who"), ("colp", (0, "wrote")), ("text", "the book"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="author", cond_columns=["book"]),
    ]
    return DomainSpec("books", "book", columns,
                      generic_templates("book", "book") + idiomatic)


def _athletics() -> DomainSpec:
    columns = [
        ColumnSpec("athlete", TEXT, pools.person_name,
                   ["athlete", "runner", "competitor"], role=ID),
        ColumnSpec("event", TEXT,
                   pools.enum(["100 metres", "marathon", "high jump",
                               "long jump", "javelin", "relay"]),
                   ["event", "discipline", "competition"], role=CAT),
        ColumnSpec("time seconds", REAL, pools.decimal(9.5, 200.0, 2),
                   ["time seconds", "time", "finishing time"]),
        ColumnSpec("nationality", TEXT,
                   pools.enum(["kenyan", "american", "jamaican", "british",
                               "ethiopian", "dutch"]),
                   ["nationality", "citizenship"], role=CAT),
        ColumnSpec("rank", REAL, pools.integer(1, 20),
                   ["rank", "position", "standing"]),
    ]
    idiomatic = [
        _t([("text", "which"), ("selp", "athlete"),
            ("colp", (0, "competed in")), ("text", "the"), ("val", 0),
            ("text", "?")], operators=[EQ],
           select="athlete", cond_columns=["event"]),
    ]
    return DomainSpec("athletics", "athlete", columns,
                      generic_templates("athlete", "athlete") + idiomatic)


def training_domains() -> list[DomainSpec]:
    """All WikiSQL-style training domains (fresh specs each call)."""
    return [_films(), _geography(), _golf(), _games(), _missions(),
            _music(), _elections(), _racing(), _employees(), _books(),
            _athletics()]


# ----------------------------------------------------------------------
# Held-out domains: the few-shot transfer benchmark (repro.eval).
# Excluded from training_domains() AND from the OVERNIGHT-style
# zero-shot domains, so fitting on K examples of one of these is an
# honest few-shot measurement — the schema, vocabulary, and value pools
# were never seen at any training stage.
# ----------------------------------------------------------------------


def _hospitals() -> DomainSpec:
    hospital = pools.compound(
        pools.enum(["saint", "mercy", "riverside", "lakeview", "northgate",
                    "hillcrest"]),
        pools.enum(["hospital", "infirmary", "medical center"]))
    columns = [
        ColumnSpec("hospital", TEXT, hospital,
                   ["hospital", "clinic", "medical facility"], role=ID),
        ColumnSpec("specialty", TEXT,
                   pools.enum(["cardiology", "oncology", "pediatrics",
                               "neurology", "orthopedics", "radiology"]),
                   ["specialty", "medical field", "focus"], role=CAT),
        ColumnSpec("beds", REAL, pools.integer(40, 900),
                   ["beds", "number of beds", "bed count"]),
        ColumnSpec("founded", REAL, pools.year(1850, 2000),
                   ["founded", "founding year", "year established"], role=TS),
        ColumnSpec("head physician", TEXT, pools.person_name,
                   ["head physician", "chief doctor", "lead surgeon"]),
    ]
    idiomatic = [
        _t([("text", "which"), ("selp", "hospital"),
            ("colp", (0, "specializes in")), ("val", 0), ("text", "?")],
           operators=[EQ], select="hospital", cond_columns=["specialty"]),
    ]
    return DomainSpec("hospitals", "hospital", columns,
                      generic_templates("hospital", "hospital") + idiomatic)


def _ships() -> DomainSpec:
    ship = pools.compound(
        pools.enum(["hms", "uss", "rms", "ss"]),
        pools.enum(["dauntless", "resolute", "meridian", "tempest",
                    "albatross", "corona", "valiant"]))
    columns = [
        ColumnSpec("ship", TEXT, ship, ["ship", "vessel", "boat"], role=ID),
        ColumnSpec("captain", TEXT, pools.person_name,
                   ["captain", "skipper", "commanding officer"]),
        ColumnSpec("tonnage", REAL, pools.integer(500, 90000),
                   ["tonnage", "weight in tons", "displacement"]),
        ColumnSpec("launched", REAL, pools.year(1900, 2016),
                   ["launched", "launch year", "year launched"], role=TS),
        ColumnSpec("home port", TEXT, pools.place_name,
                   ["home port", "port of registry", "harbor of origin"]),
    ]
    idiomatic = [
        _t([("text", "who"), ("colp", (0, "commands")), ("text", "the"),
            ("val", 0), ("text", "?")], operators=[EQ],
           select="captain", cond_columns=["ship"]),
    ]
    return DomainSpec("ships", "ship", columns,
                      generic_templates("ship", "ship") + idiomatic)


def _observatories() -> DomainSpec:
    observatory = pools.compound(
        pools.enum(["mount", "cerro", "pic", "roque"]),
        pools.enum(["palomar", "tololo", "verde", "austral", "boreal",
                    "celeste"]))
    columns = [
        ColumnSpec("observatory", TEXT, observatory,
                   ["observatory", "telescope site", "station"], role=ID),
        ColumnSpec("altitude", REAL, pools.integer(800, 5100),
                   ["altitude", "elevation", "height above sea level"]),
        ColumnSpec("mirror size", REAL, pools.decimal(1.0, 12.0, 1),
                   ["mirror size", "aperture", "mirror diameter"]),
        ColumnSpec("first light", REAL, pools.year(1900, 2020),
                   ["first light", "commissioning year",
                    "year of first light"], role=TS),
        ColumnSpec("host nation", TEXT,
                   pools.enum(["chile", "usa", "spain", "south africa",
                               "hawaii", "namibia"]),
                   ["host nation", "country of operation"], role=CAT),
    ]
    return DomainSpec("observatories", "observatory", columns,
                      generic_templates("observatory", "observatory"))


def held_out_domains() -> list[DomainSpec]:
    """Held-out few-shot transfer domains (fresh specs each call).

    Disjoint from :func:`training_domains` and from the OVERNIGHT-style
    zero-shot domains; used by :mod:`repro.eval.transfer`.
    """
    return [_hospitals(), _ships(), _observatories()]
