"""Dataset record types and JSONL (de)serialization.

An :class:`Example` is one (question, table, SQL) record in the WikiSQL
format, optionally carrying gold *mention spans* produced by the
synthetic generators.  Span supervision is only used to *evaluate*
mention detection — training follows the paper and needs only
(question, SQL) pairs plus metadata.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import DataError
from repro.sqlengine import Column, DataType, Query, Table, parse_sql
from repro.text.tokenizer import tokenize

__all__ = ["MentionSpan", "Example", "save_jsonl", "load_jsonl"]


@dataclass(frozen=True)
class MentionSpan:
    """A gold mention: a token span ``[start, end)`` referring to a column.

    ``kind`` is ``"column"`` (the span mentions the column itself) or
    ``"value"`` (the span is a value belonging to the column).  For
    *implicit* column mentions (challenge 3) ``start == end`` and the
    span is empty.
    """

    column: str
    kind: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.kind not in ("column", "value"):
            raise DataError(f"unknown mention kind {self.kind!r}")
        if self.start > self.end or self.start < 0:
            raise DataError(f"invalid span [{self.start}, {self.end})")

    @property
    def is_implicit(self) -> bool:
        return self.start == self.end


@dataclass
class Example:
    """One dataset record: a question against a table with gold SQL."""

    question: str
    table: Table
    query: Query
    mentions: list[MentionSpan] = field(default_factory=list)
    domain: str = ""
    sketch_compatible: bool = True

    @property
    def question_tokens(self) -> list[str]:
        """Tokenized question (lowercased)."""
        return tokenize(self.question)

    def column_mentions(self) -> dict[str, MentionSpan]:
        """Column-kind mentions keyed by column name."""
        return {m.column: m for m in self.mentions if m.kind == "column"}

    def value_mentions(self) -> dict[str, MentionSpan]:
        """Value-kind mentions keyed by column name."""
        return {m.column: m for m in self.mentions if m.kind == "value"}


# ----------------------------------------------------------------------
# JSONL IO
# ----------------------------------------------------------------------


def _example_to_dict(example: Example) -> dict:
    return {
        "question": example.question,
        "table": {
            "name": example.table.name,
            "columns": [[c.name, c.dtype.value] for c in example.table.columns],
            "rows": [list(r) for r in example.table.rows],
        },
        "sql": example.query.to_sql(),
        "mentions": [[m.column, m.kind, m.start, m.end] for m in example.mentions],
        "domain": example.domain,
        "sketch_compatible": example.sketch_compatible,
    }


def _example_from_dict(payload: dict) -> Example:
    try:
        table_spec = payload["table"]
        table = Table(
            table_spec["name"],
            [Column(name, DataType(dtype)) for name, dtype in table_spec["columns"]],
            [tuple(r) for r in table_spec["rows"]],
        )
        return Example(
            question=payload["question"],
            table=table,
            query=parse_sql(payload["sql"]),
            mentions=[MentionSpan(c, k, s, e)
                      for c, k, s, e in payload.get("mentions", [])],
            domain=payload.get("domain", ""),
            sketch_compatible=payload.get("sketch_compatible", True),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DataError(f"malformed example record: {exc}") from exc


def save_jsonl(examples: list[Example], path: str | os.PathLike) -> None:
    """Write examples to a JSON-lines file."""
    with open(path, "w", encoding="utf-8") as handle:
        for example in examples:
            handle.write(json.dumps(_example_to_dict(example)) + "\n")


def load_jsonl(path: str | os.PathLike) -> list[Example]:
    """Read examples from a JSON-lines file."""
    examples = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                examples.append(_example_from_dict(json.loads(line)))
    return examples
