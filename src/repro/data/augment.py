"""Composable augmentation passes over intent-generation plans.

A :class:`GenPlan` bundles everything an intent generator may vary for
one domain: the (possibly rewritten) :class:`~repro.data.template.DomainSpec`,
the comparison operators it may emit, and the counterfactual-value
rate.  An augmentation pass is any object with
``apply(plan, rng) -> GenPlan``; passes are pure (they return new
plans/specs and never mutate the input), so they compose in any order
via :func:`apply_passes`.

Three stock passes:

* :class:`ColumnShuffle` — permutes the schema's column order, so
  models cannot latch onto column *position* (the role/name signal
  must carry the weight);
* :class:`OperatorSubset` — restricts the comparison operators the
  plan's generators may emit (e.g. an equality-only corpus slice);
* :class:`ValueVariation` — re-offsets every numeric sampler by a
  small per-column constant, decorrelating value distributions between
  augmented corpus slices (dates/years shift by a few units, measures
  by a proportional amount).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.sqlengine import Operator
from repro.sqlengine.types import DataType

from repro.data.template import ColumnSpec, DomainSpec

__all__ = ["GenPlan", "ColumnShuffle", "OperatorSubset", "ValueVariation",
           "apply_passes"]

_ALL_OPERATORS = (Operator.EQ, Operator.GT, Operator.LT)


@dataclass(frozen=True)
class GenPlan:
    """Generation-time parameters for one domain (see module docstring)."""

    domain: DomainSpec
    allowed_operators: tuple[Operator, ...] = _ALL_OPERATORS
    counterfactual_rate: float = 0.15


class ColumnShuffle:
    """Permute the domain's column order (schema-position invariance)."""

    def apply(self, plan: GenPlan, rng: np.random.Generator) -> GenPlan:
        columns = list(plan.domain.columns)
        order = rng.permutation(len(columns))
        shuffled = [columns[int(i)] for i in order]
        domain = dataclasses.replace(plan.domain, columns=shuffled)
        return dataclasses.replace(plan, domain=domain)


class OperatorSubset:
    """Restrict the comparison operators generators may emit."""

    def __init__(self, operators: tuple[Operator, ...]):
        operators = tuple(operators)
        if not operators:
            raise DataError("OperatorSubset needs at least one operator")
        unknown = [op for op in operators if op not in _ALL_OPERATORS]
        if unknown:
            raise DataError(f"unsupported operators {unknown}")
        self.operators = operators

    def apply(self, plan: GenPlan, rng: np.random.Generator) -> GenPlan:
        allowed = tuple(op for op in plan.allowed_operators
                        if op in self.operators)
        if not allowed:
            raise DataError("operator subset leaves no allowed operators")
        return dataclasses.replace(plan, allowed_operators=allowed)


def _offset_sampler(base, offset):
    def sample(rng: np.random.Generator):
        value = base(rng)
        shifted = value + offset
        return int(shifted) if isinstance(value, int) else shifted
    return sample


class ValueVariation:
    """Shift every numeric column's sampler by a per-column offset.

    Year-like columns (all integers, plausibly calendar years) shift by
    a few units; other numeric columns shift proportionally to
    ``jitter`` times a typical sampled magnitude.  Offsets are drawn
    once per column at apply time, so the pass is deterministic given
    the generation RNG stream.
    """

    def __init__(self, jitter: float = 0.1):
        if jitter <= 0:
            raise DataError("jitter must be positive")
        self.jitter = jitter

    def apply(self, plan: GenPlan, rng: np.random.Generator) -> GenPlan:
        new_columns: list[ColumnSpec] = []
        for spec in plan.domain.columns:
            if spec.dtype != DataType.REAL:
                new_columns.append(spec)
                continue
            probe = spec.sample(rng)
            if isinstance(probe, int) and 1800 <= probe <= 2100:
                offset = int(rng.integers(-3, 4))
            else:
                magnitude = max(abs(float(probe)), 1.0) * self.jitter
                offset = round(float(rng.uniform(-magnitude, magnitude)), 2)
                if isinstance(probe, int):
                    offset = int(round(offset))
            new_columns.append(dataclasses.replace(
                spec, sample=_offset_sampler(spec.sample, offset)))
        domain = dataclasses.replace(plan.domain, columns=new_columns)
        return dataclasses.replace(plan, domain=domain)


def apply_passes(plan: GenPlan, passes, rng: np.random.Generator) -> GenPlan:
    """Fold augmentation passes over a plan, left to right."""
    for augmentation in passes:
        plan = augmentation.apply(plan, rng)
    return plan
