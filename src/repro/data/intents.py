"""Role-matched intent generators for the extended SQL sketch.

Where :mod:`repro.data.template` renders fixed per-domain templates,
this module generates questions from *intents* — question families
declared against column :class:`~repro.data.roles.Role` requirements
rather than concrete schemas.  Any domain whose roles satisfy an
intent's requirements gets that family, including the held-out
transfer schemas, which is what makes the corpus role-typed rather
than domain-typed.

Eight intents cover the extended sketch (see DESIGN.md §10 for the
mapping to grammar productions and decoder vocabulary):

========== ===================================================== =========
intent     SQL shape                                             extended?
========== ===================================================== =========
filter     SELECT col WHERE col op val                            no
count      SELECT COUNT(id) WHERE col = val                       no
aggregate  SELECT agg(measure) [WHERE col = val]                  no
range      SELECT col WHERE m > lo AND m < hi                     no
topn       SELECT id ORDER BY measure ASC|DESC LIMIT n            yes
group_agg  SELECT agg(col) GROUP BY cat [HAVING COUNT(cat) > n]   yes
negation   SELECT col WHERE NOT (col = val)                       yes
disjunction SELECT col WHERE col = v1 OR col = v2                 yes
========== ===================================================== =========

Every numeric literal a query needs beyond the WHERE values (the LIMIT
``n``, the HAVING threshold) is surfaced verbatim in the question text
so the translator's copy space can reach it — the output vocabulary is
built from structural tokens plus question/header tokens, never from an
open number vocabulary.

Gold mention spans are tracked exactly as in ``template.render`` so the
mention-detection evaluation covers the new families too.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.sqlengine import (
    Aggregate,
    Condition,
    Having,
    Not,
    Operator,
    Or,
    OrderBy,
    Query,
    SortDirection,
    Table,
)
from repro.sqlengine.types import DataType

from repro.data.augment import GenPlan, apply_passes
from repro.data.records import Example, MentionSpan
from repro.data.roles import Role
from repro.data.template import ColumnSpec, DomainSpec, _value_surface

__all__ = [
    "IntentGenerator", "FilterIntent", "CountIntent", "AggregateIntent",
    "RangeIntent", "TopNIntent", "GroupAggIntent", "NegationIntent",
    "DisjunctionIntent", "standard_intents", "generate_intent_split",
    "generate_role_typed",
]

_MAX_ATTEMPTS = 12


# ----------------------------------------------------------------------
# Question assembly with gold-span tracking
# ----------------------------------------------------------------------


class _Builder:
    """Accumulates question tokens plus gold mention spans."""

    def __init__(self) -> None:
        self.tokens: list[str] = []
        self.mentions: list[MentionSpan] = []
        self._mentioned: set[str] = set()

    def _emit(self, text: str) -> tuple[int, int]:
        from repro.text.tokenizer import tokenize
        start = len(self.tokens)
        self.tokens.extend(tokenize(text))
        return start, len(self.tokens)

    def text(self, words: str) -> None:
        self._emit(words)

    def column(self, spec: ColumnSpec, rng: np.random.Generator) -> None:
        surface = str(spec.mentions[int(rng.integers(0, len(spec.mentions)))])
        start, end = self._emit(surface)
        self.mentions.append(MentionSpan(spec.name, "column", start, end))
        self._mentioned.add(spec.name.lower())

    def value(self, column_name: str, value: object) -> None:
        start, end = self._emit(_value_surface(value))
        self.mentions.append(MentionSpan(column_name, "value", start, end))

    def finish(self, cond_columns: list[str]) -> None:
        """Record implicit column mentions, as ``template.render`` does."""
        for col in cond_columns:
            if col.lower() not in self._mentioned:
                span = next((m for m in self.mentions
                             if m.kind == "value" and m.column == col), None)
                anchor = span.start if span else len(self.tokens)
                self.mentions.append(MentionSpan(col, "column", anchor, anchor))

    @property
    def question(self) -> str:
        return " ".join(self.tokens)


def _pick(rng: np.random.Generator, items):
    if not items:
        raise DataError("cannot pick from an empty pool")
    return items[int(rng.integers(0, len(items)))]


def _cond_value(spec: ColumnSpec, table: Table, rng: np.random.Generator,
                counterfactual_rate: float) -> object:
    """A condition value: usually a real cell, sometimes counterfactual."""
    if table.rows and rng.random() >= counterfactual_rate:
        row = table.rows[int(rng.integers(0, len(table.rows)))]
        return row[table.column_index(spec.name)]
    return spec.sample(rng)


def _orderable(domain: DomainSpec) -> list[ColumnSpec]:
    """REAL-dtype measure/timestamp columns (support <, >, ORDER BY)."""
    return [spec for spec in
            domain.columns_with_role(Role.MEASURE, Role.TIMESTAMP)
            if spec.dtype == DataType.REAL]


def _other_columns(domain: DomainSpec, *used: ColumnSpec) -> list[ColumnSpec]:
    taken = {spec.name.lower() for spec in used}
    return [spec for spec in domain.columns if spec.name.lower() not in taken]


def _example(builder: _Builder, table: Table, query: Query,
             domain: DomainSpec, cond_columns: list[str],
             sketch_compatible: bool = True) -> Example:
    builder.finish(cond_columns)
    return Example(question=builder.question, table=table, query=query,
                   mentions=builder.mentions, domain=domain.name,
                   sketch_compatible=sketch_compatible)


# ----------------------------------------------------------------------
# The generators
# ----------------------------------------------------------------------


class IntentGenerator:
    """One question family; subclasses declare role requirements."""

    #: Sketch-family label, matching :func:`repro.core.metrics.sketch_label`.
    name: str = ""
    #: Whether the produced query stays inside the legacy WikiSQL sketch.
    legacy_sketch: bool = True

    def applicable(self, domain: DomainSpec) -> bool:
        raise NotImplementedError

    def generate(self, plan: GenPlan, table: Table,
                 rng: np.random.Generator) -> Example:
        raise NotImplementedError


class FilterIntent(IntentGenerator):
    """``SELECT col WHERE col op val`` — the base family."""

    name = "filter"

    def applicable(self, domain: DomainSpec) -> bool:
        return len(domain.columns) >= 2

    def generate(self, plan, table, rng):
        domain = plan.domain
        select = _pick(rng, domain.columns)
        operator = _pick(rng, [op for op in plan.allowed_operators
                               if op in (Operator.EQ, Operator.GT, Operator.LT)])
        pool = _other_columns(domain, select)
        if operator is not Operator.EQ:
            pool = [c for c in pool if c.dtype == DataType.REAL]
        cond = _pick(rng, pool)
        value = (_cond_value(cond, table, rng, plan.counterfactual_rate)
                 if operator is Operator.EQ else cond.sample(rng))

        b = _Builder()
        if operator is Operator.EQ:
            if rng.random() < 0.5:
                b.text("what is the"); b.column(select, rng)
                b.text(f"of the {domain.entity} with")
                b.column(cond, rng); b.value(cond.name, value); b.text("?")
            else:
                b.text("which"); b.column(select, rng); b.text("has")
                b.column(cond, rng); b.value(cond.name, value); b.text("?")
        else:
            word = "over" if operator is Operator.GT else "under"
            b.text("which"); b.column(select, rng); b.text("has a")
            b.column(cond, rng); b.text(word)
            b.value(cond.name, value); b.text("?")
        query = Query(select_column=select.name,
                      conditions=[Condition(cond.name, operator, value)])
        return _example(b, table, query, domain, [cond.name])


class CountIntent(IntentGenerator):
    """``SELECT COUNT(id) WHERE col = val``."""

    name = "count"

    def applicable(self, domain: DomainSpec) -> bool:
        return bool(domain.columns_with_role(Role.IDENTIFIER)) \
            and len(domain.columns) >= 2

    def generate(self, plan, table, rng):
        domain = plan.domain
        key = _pick(rng, domain.columns_with_role(Role.IDENTIFIER))
        cond = _pick(rng, _other_columns(domain, key))
        value = _cond_value(cond, table, rng, plan.counterfactual_rate)

        b = _Builder()
        if rng.random() < 0.5:
            b.text(f"how many {domain.entity} records have")
            b.column(cond, rng); b.value(cond.name, value); b.text("?")
        else:
            b.text(f"count the {domain.entity} entries where the")
            b.column(cond, rng); b.text("is"); b.value(cond.name, value)
        query = Query(select_column=key.name, aggregate=Aggregate.COUNT,
                      conditions=[Condition(cond.name, Operator.EQ, value)])
        return _example(b, table, query, domain, [cond.name])


_AGG_WORDS = {Aggregate.MAX: "highest", Aggregate.MIN: "lowest",
              Aggregate.SUM: "total", Aggregate.AVG: "average"}


class AggregateIntent(IntentGenerator):
    """``SELECT agg(measure) [WHERE col = val]``."""

    name = "aggregate"

    def applicable(self, domain: DomainSpec) -> bool:
        return bool(_orderable(domain))

    def generate(self, plan, table, rng):
        domain = plan.domain
        measure = _pick(rng, _orderable(domain))
        aggregate = _pick(rng, list(_AGG_WORDS))

        b = _Builder()
        b.text(f"what is the {_AGG_WORDS[aggregate]}")
        b.column(measure, rng)
        cond_cols: list[str] = []
        conditions: list[Condition] = []
        if rng.random() < 0.5:
            cond = _pick(rng, _other_columns(domain, measure))
            value = _cond_value(cond, table, rng, plan.counterfactual_rate)
            b.text("when the"); b.column(cond, rng); b.text("is")
            b.value(cond.name, value)
            cond_cols = [cond.name]
            conditions = [Condition(cond.name, Operator.EQ, value)]
        b.text("?")
        query = Query(select_column=measure.name, aggregate=aggregate,
                      conditions=conditions)
        return _example(b, table, query, domain, cond_cols)


class RangeIntent(IntentGenerator):
    """``SELECT col WHERE m > lo AND m < hi`` — between-phrasing.

    Stays inside the legacy sketch (a flat AND of two comparisons on
    the same column), so range questions also enrich the legacy corpus.
    """

    name = "range"

    def applicable(self, domain: DomainSpec) -> bool:
        return bool(_orderable(domain)) and len(domain.columns) >= 2

    def generate(self, plan, table, rng):
        if not {Operator.GT, Operator.LT} <= set(plan.allowed_operators):
            raise DataError("range intent needs both > and < allowed")
        domain = plan.domain
        measure = _pick(rng, _orderable(domain))
        select = _pick(rng, _other_columns(domain, measure))
        lo, hi = sorted((measure.sample(rng), measure.sample(rng)))
        if lo == hi:
            hi = hi + 1 if isinstance(hi, int) else hi + 1.0

        b = _Builder()
        if rng.random() < 0.5:
            b.text("which"); b.column(select, rng); b.text("has")
            b.column(measure, rng); b.text("between")
            b.value(measure.name, lo); b.text("and")
            b.value(measure.name, hi); b.text("?")
        else:
            b.text("name the"); b.column(select, rng); b.text("with")
            b.column(measure, rng); b.text("above")
            b.value(measure.name, lo); b.text("but under")
            b.value(measure.name, hi)
        query = Query(select_column=select.name,
                      conditions=[Condition(measure.name, Operator.GT, lo),
                                  Condition(measure.name, Operator.LT, hi)])
        return _example(b, table, query, domain, [measure.name])


class TopNIntent(IntentGenerator):
    """``SELECT id ORDER BY measure DESC|ASC LIMIT n``.

    The digit ``n`` is emitted into the question so the decoder can
    copy it into the LIMIT slot.
    """

    name = "topn"
    legacy_sketch = False

    def applicable(self, domain: DomainSpec) -> bool:
        return bool(domain.columns_with_role(Role.IDENTIFIER)) \
            and bool(_orderable(domain))

    def generate(self, plan, table, rng):
        domain = plan.domain
        key = _pick(rng, domain.columns_with_role(Role.IDENTIFIER))
        measure = _pick(rng, _orderable(domain))
        n = _pick(rng, [2, 3, 5])
        descending = bool(rng.random() < 0.5)

        b = _Builder()
        if descending:
            if rng.random() < 0.5:
                b.text(f"which {n}"); b.column(key, rng)
                b.text("have the highest"); b.column(measure, rng); b.text("?")
            else:
                b.text(f"list the top {n}"); b.column(key, rng)
                b.text("by"); b.column(measure, rng)
        else:
            b.text(f"which {n}"); b.column(key, rng)
            b.text("have the lowest"); b.column(measure, rng); b.text("?")
        direction = SortDirection.DESC if descending else SortDirection.ASC
        query = Query(select_column=key.name,
                      order_by=OrderBy(measure.name, direction), limit=n)
        return _example(b, table, query, domain, [],
                        sketch_compatible=False)


class GroupAggIntent(IntentGenerator):
    """``SELECT agg(col) GROUP BY cat [HAVING COUNT(cat) > n]``.

    The HAVING threshold is phrased as "more than ``n``" so the digit
    is copyable, like the top-N LIMIT.
    """

    name = "group_agg"
    legacy_sketch = False

    def applicable(self, domain: DomainSpec) -> bool:
        if not domain.columns_with_role(Role.CATEGORY):
            return False
        return bool(_orderable(domain)) \
            or bool(domain.columns_with_role(Role.IDENTIFIER))

    def generate(self, plan, table, rng):
        domain = plan.domain
        category = _pick(rng, domain.columns_with_role(Role.CATEGORY))
        measures = [c for c in _orderable(domain)
                    if c.name.lower() != category.name.lower()]
        keys = [c for c in domain.columns_with_role(Role.IDENTIFIER)
                if c.name.lower() != category.name.lower()]

        b = _Builder()
        if measures and (not keys or rng.random() < 0.6):
            measure = _pick(rng, measures)
            aggregate = _pick(rng, [Aggregate.AVG, Aggregate.SUM])
            word = "average" if aggregate is Aggregate.AVG else "total"
            b.text(f"what is the {word}"); b.column(measure, rng)
            b.text("for each"); b.column(category, rng)
            select = measure.name
        else:
            key = _pick(rng, keys)
            aggregate = Aggregate.COUNT
            b.text(f"how many {domain.entity} records are there for each")
            b.column(category, rng)
            select = key.name
        having = None
        if rng.random() < 0.4:
            threshold = _pick(rng, [1, 2])
            b.text(f"with more than {threshold} {domain.entity} records")
            having = Having(Aggregate.COUNT, category.name, Operator.GT,
                            threshold)
        b.text("?")
        query = Query(select_column=select, aggregate=aggregate,
                      group_by=category.name, having=having)
        return _example(b, table, query, domain, [],
                        sketch_compatible=False)


class NegationIntent(IntentGenerator):
    """``SELECT col WHERE NOT (col = val)``."""

    name = "negation"
    legacy_sketch = False

    def applicable(self, domain: DomainSpec) -> bool:
        return len(domain.columns) >= 2 and bool(
            domain.columns_with_role(Role.CATEGORY, Role.TEXT))

    def generate(self, plan, table, rng):
        domain = plan.domain
        pool = domain.columns_with_role(Role.CATEGORY) \
            or domain.columns_with_role(Role.TEXT)
        cond = _pick(rng, pool)
        select = _pick(rng, _other_columns(domain, cond))
        # Negating a value that is actually present keeps the answer
        # non-trivial, so skip the counterfactual coin flip.
        value = _cond_value(cond, table, rng, counterfactual_rate=0.0)

        b = _Builder()
        if rng.random() < 0.5:
            b.text("which"); b.column(select, rng); b.text("has a")
            b.column(cond, rng); b.text("other than")
            b.value(cond.name, value); b.text("?")
        else:
            b.text("name the"); b.column(select, rng); b.text("whose")
            b.column(cond, rng); b.text("is not"); b.value(cond.name, value)
        query = Query(select_column=select.name,
                      where=Not(Condition(cond.name, Operator.EQ, value)))
        return _example(b, table, query, domain, [cond.name],
                        sketch_compatible=False)


class DisjunctionIntent(IntentGenerator):
    """``SELECT col WHERE col = v1 OR col = v2``."""

    name = "disjunction"
    legacy_sketch = False

    def applicable(self, domain: DomainSpec) -> bool:
        return len(domain.columns) >= 2 and bool(
            domain.columns_with_role(Role.CATEGORY))

    def generate(self, plan, table, rng):
        domain = plan.domain
        cond = _pick(rng, domain.columns_with_role(Role.CATEGORY))
        select = _pick(rng, _other_columns(domain, cond))
        column_cells = [row[table.column_index(cond.name)]
                        for row in table.rows]
        distinct = sorted({str(c) for c in column_cells})
        if len(distinct) >= 2:
            first = _pick(rng, distinct)
            second = _pick(rng, [v for v in distinct if v != first])
        else:
            first = cond.sample(rng)
            second = cond.sample(rng)
            if str(first) == str(second):
                raise DataError("no distinct disjunction values")

        b = _Builder()
        b.text("which"); b.column(select, rng); b.text("has")
        b.column(cond, rng); b.value(cond.name, first)
        b.text("or"); b.value(cond.name, second); b.text("?")
        query = Query(select_column=select.name,
                      where=Or((Condition(cond.name, Operator.EQ, first),
                                Condition(cond.name, Operator.EQ, second))))
        return _example(b, table, query, domain, [cond.name],
                        sketch_compatible=False)


def standard_intents() -> list[IntentGenerator]:
    """All intent generators, legacy families first (fresh instances)."""
    return [FilterIntent(), CountIntent(), AggregateIntent(), RangeIntent(),
            TopNIntent(), GroupAggIntent(), NegationIntent(),
            DisjunctionIntent()]


# ----------------------------------------------------------------------
# Corpus assembly
# ----------------------------------------------------------------------


def generate_intent_split(domains: list[DomainSpec], size: int, split: str,
                          rng: np.random.Generator,
                          generators: list[IntentGenerator] | None = None,
                          passes=(), rows_per_table: int = 12,
                          tables_per_domain: int = 2,
                          counterfactual_rate: float = 0.15) -> list[Example]:
    """One split of role-typed examples with fresh tables per domain.

    Domains round-robin as in :func:`repro.data.wikisql.generate_split`;
    within a domain the *applicable* generators also round-robin, so
    every sketch family a schema supports is evenly represented.
    Augmentation ``passes`` (:mod:`repro.data.augment`) rewrite each
    domain's :class:`~repro.data.augment.GenPlan` before generation.
    """
    if size <= 0:
        return []
    generators = generators if generators is not None else standard_intents()
    plans: dict[str, GenPlan] = {}
    applicable: dict[str, list[IntentGenerator]] = {}
    tables: dict[str, list[Table]] = {}
    for domain in domains:
        plan = apply_passes(
            GenPlan(domain=domain, counterfactual_rate=counterfactual_rate),
            passes, rng)
        usable = [g for g in generators if g.applicable(plan.domain)]
        if not usable:
            raise DataError(
                f"no intent generator applies to domain {domain.name!r}")
        plans[domain.name] = plan
        applicable[domain.name] = usable
        tables[domain.name] = [
            plan.domain.build_table(rng, rows_per_table,
                                    table_name=f"{domain.name}_{split}_{i}")
            for i in range(tables_per_domain)]

    examples: list[Example] = []
    per_domain_count: dict[str, int] = {d.name: 0 for d in domains}
    # Stagger each domain's round-robin starting point so that small
    # corpora still cover every sketch family (otherwise all domains
    # would begin with the same legacy-first generators).
    offsets = {d.name: i for i, d in enumerate(domains)}
    while len(examples) < size:
        domain = domains[len(examples) % len(domains)]
        plan = plans[domain.name]
        table = tables[domain.name][int(rng.integers(0, tables_per_domain))]
        usable = applicable[domain.name]
        for attempt in range(_MAX_ATTEMPTS):
            generator = usable[
                (offsets[domain.name] + per_domain_count[domain.name]
                 + attempt) % len(usable)]
            try:
                example = generator.generate(plan, table, rng)
            except DataError:
                continue
            examples.append(example)
            per_domain_count[domain.name] += 1
            break
        else:
            raise DataError(
                f"could not generate any intent for domain {domain.name!r}")
    return examples


def generate_role_typed(seed: int = 0, train_size: int = 600,
                        dev_size: int = 150, test_size: int = 150,
                        domains: list[DomainSpec] | None = None,
                        generators: list[IntentGenerator] | None = None,
                        passes=(), rows_per_table: int = 12,
                        tables_per_domain: int = 2,
                        counterfactual_rate: float = 0.15,
                        allow_held_out: bool = False):
    """Role-typed train/dev/test splits over the extended sketch.

    The held-out transfer schemas are refused unless ``allow_held_out``
    is set — they must stay unseen for the few-shot transfer harness
    (:mod:`repro.eval.transfer`) to be honest.
    """
    from repro.data.domains import held_out_domains, training_domains
    from repro.data.wikisql import WikiSQLStyleDataset

    if domains is None:
        domains = training_domains()
    if not allow_held_out:
        reserved = {d.name for d in held_out_domains()}
        offending = sorted(d.name for d in domains if d.name in reserved)
        if offending:
            raise DataError(
                f"held-out transfer domains {offending} cannot be used for "
                f"corpus generation (pass allow_held_out=True to override)")
    rng = np.random.default_rng(seed)
    common = dict(generators=generators, passes=passes,
                  rows_per_table=rows_per_table,
                  tables_per_domain=tables_per_domain,
                  counterfactual_rate=counterfactual_rate)
    return WikiSQLStyleDataset(
        train=generate_intent_split(domains, train_size, "train", rng,
                                    **common),
        dev=generate_intent_split(domains, dev_size, "dev", rng, **common),
        test=generate_intent_split(domains, test_size, "test", rng, **common),
    )
