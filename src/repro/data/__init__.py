"""Synthetic dataset generators standing in for WikiSQL, OVERNIGHT, and
ParaphraseBench (unavailable offline).

See DESIGN.md for the substitution rationale: the generators reproduce
the structural properties the paper's evaluation depends on (unseen
tables per split, paraphrased/implicit mentions, counterfactual values,
sketch-compatibility filtering, controlled linguistic variation).
"""

from repro.data.augment import (
    ColumnShuffle,
    GenPlan,
    OperatorSubset,
    ValueVariation,
    apply_passes,
)
from repro.data.domains import (
    generic_templates,
    held_out_domains,
    make_template,
    training_domains,
)
from repro.data.intents import (
    IntentGenerator,
    generate_intent_split,
    generate_role_typed,
    standard_intents,
)
from repro.data.roles import Role, default_role
from repro.data.overnight import SUBDOMAINS, generate_overnight, overnight_domains
from repro.data.paraphrase import (
    CATEGORIES,
    build_patients_table,
    generate_paraphrase_bench,
)
from repro.data.records import Example, MentionSpan, load_jsonl, save_jsonl
from repro.data.template import ColumnSpec, DomainSpec, QuestionTemplate, render
from repro.data.wikisql import (
    WikiSQLStyleDataset,
    generate_heldout,
    generate_split,
    generate_wikisql_style,
)

__all__ = [
    "Example", "MentionSpan", "save_jsonl", "load_jsonl",
    "ColumnSpec", "DomainSpec", "QuestionTemplate", "render",
    "Role", "default_role",
    "IntentGenerator", "standard_intents", "generate_intent_split",
    "generate_role_typed",
    "GenPlan", "ColumnShuffle", "OperatorSubset", "ValueVariation",
    "apply_passes",
    "training_domains", "held_out_domains", "generic_templates",
    "make_template",
    "WikiSQLStyleDataset", "generate_wikisql_style", "generate_split",
    "generate_heldout",
    "SUBDOMAINS", "overnight_domains", "generate_overnight",
    "CATEGORIES", "build_patients_table", "generate_paraphrase_bench",
]
