"""Synthetic WikiSQL-style dataset generation.

Reproduces the properties of WikiSQL that the paper's evaluation relies
on: (question, SQL, table) records following the WikiSQL sketch,
paraphrased and implicit column mentions, counterfactual values, and
**tables that are not shared between the train/dev/test splits** (each
split samples fresh table instances, so test questions run against
unseen rows and table names).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError

from repro.data.domains import held_out_domains, training_domains
from repro.data.records import Example
from repro.data.template import DomainSpec, render

__all__ = ["WikiSQLStyleDataset", "generate_wikisql_style", "generate_split",
           "generate_heldout"]

_MAX_RENDER_ATTEMPTS = 12


@dataclass
class WikiSQLStyleDataset:
    """Train/dev/test splits of synthetic WikiSQL-style examples."""

    train: list[Example] = field(default_factory=list)
    dev: list[Example] = field(default_factory=list)
    test: list[Example] = field(default_factory=list)

    @property
    def splits(self) -> dict[str, list[Example]]:
        return {"train": self.train, "dev": self.dev, "test": self.test}

    def table_names(self, split: str) -> set[str]:
        return {e.table.name for e in self.splits[split]}


def generate_split(domains: list[DomainSpec], size: int, split: str,
                   rng: np.random.Generator, rows_per_table: int = 12,
                   tables_per_domain: int = 2,
                   counterfactual_rate: float = 0.15) -> list[Example]:
    """Generate one split with fresh tables for every domain."""
    if size <= 0:
        return []
    tables = {
        domain.name: [domain.build_table(
            rng, rows_per_table, table_name=f"{domain.name}_{split}_{i}")
            for i in range(tables_per_domain)]
        for domain in domains
    }
    examples: list[Example] = []
    while len(examples) < size:
        domain = domains[len(examples) % len(domains)]
        table = tables[domain.name][int(rng.integers(0, tables_per_domain))]
        for _ in range(_MAX_RENDER_ATTEMPTS):
            template = domain.templates[int(rng.integers(0, len(domain.templates)))]
            try:
                example = render(template, domain, table, rng,
                                 counterfactual_rate=counterfactual_rate)
            except DataError:
                continue  # template/domain mismatch (e.g. no free numeric col)
            examples.append(example)
            break
        else:
            raise DataError(
                f"could not render any template for domain {domain.name!r}")
    return examples


def generate_wikisql_style(seed: int = 0, train_size: int = 600,
                           dev_size: int = 150, test_size: int = 150,
                           rows_per_table: int = 12,
                           tables_per_domain: int = 2,
                           counterfactual_rate: float = 0.15,
                           ) -> WikiSQLStyleDataset:
    """Generate the full dataset.

    Each split draws independent tables (disjoint table names and
    independently sampled rows), reproducing WikiSQL's
    unseen-tables-at-test-time evaluation setup.
    """
    rng = np.random.default_rng(seed)
    domains = training_domains()
    return WikiSQLStyleDataset(
        train=generate_split(domains, train_size, "train", rng,
                             rows_per_table, tables_per_domain,
                             counterfactual_rate),
        dev=generate_split(domains, dev_size, "dev", rng,
                           rows_per_table, tables_per_domain,
                           counterfactual_rate),
        test=generate_split(domains, test_size, "test", rng,
                            rows_per_table, tables_per_domain,
                            counterfactual_rate),
    )


def generate_heldout(seed: int = 2, per_domain: int = 40,
                     rows_per_table: int = 10, tables_per_domain: int = 1,
                     counterfactual_rate: float = 0.1,
                     ) -> dict[str, list[Example]]:
    """Per-domain example lists for the held-out transfer domains.

    Backs the few-shot transfer benchmark (:mod:`repro.eval.transfer`):
    each domain from :func:`repro.data.domains.held_out_domains` gets
    fresh tables and ``per_domain`` rendered examples, keyed by domain
    name.
    """
    rng = np.random.default_rng(seed)
    return {
        domain.name: generate_split([domain], per_domain, "heldout", rng,
                                    rows_per_table, tables_per_domain,
                                    counterfactual_rate)
        for domain in held_out_domains()
    }
