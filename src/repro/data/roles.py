"""Typed semantic roles for generator-side columns.

A :class:`Role` describes what a column *means* to the question
generators, independent of its storage dtype:

``identifier``
    The entity-key column ("film name", "player") — the natural COUNT
    target and the column a top-N question asks to list.
``measure``
    A numeric quantity that supports ordering, aggregation, and ranges
    ("salary", "attendance").
``timestamp``
    A point in time ("year", "launch date").  Numeric timestamps (REAL
    year columns) additionally support ordering and ranges.
``category``
    A low-cardinality label ("genre", "party") — the natural GROUP BY
    key and disjunction/negation target.
``boolean``
    A two-valued flag.  No current domain uses one, but the role is part
    of the contract so future schemas slot into the same generators.
``text``
    Free-form text with no special structure (names, places).

Intent generators (:mod:`repro.data.intents`) declare their requirements
against roles rather than against concrete domains, so any schema whose
roles satisfy a generator — including held-out transfer schemas — gets
that question family for free.
"""

from __future__ import annotations

from enum import Enum

from repro.sqlengine.types import DataType

__all__ = ["Role", "default_role"]


class Role(str, Enum):
    """Semantic role of a generator column (see module docstring)."""

    IDENTIFIER = "identifier"
    MEASURE = "measure"
    TIMESTAMP = "timestamp"
    CATEGORY = "category"
    BOOLEAN = "boolean"
    TEXT = "text"


def default_role(dtype: DataType) -> Role:
    """Fallback role when a :class:`~repro.data.template.ColumnSpec`
    does not declare one: numeric columns are measures, everything else
    is free text."""
    return Role.MEASURE if dtype == DataType.REAL else Role.TEXT
