"""Clean-vs-attacked scoring per model rung; report assembly.

A :class:`ModelRung` names one configuration of the degradation ladder
— the full adversarial pipeline (``mode="full"``) or the matcher-only
context-free rung (``mode="context_free"``) — over one trained model.
:func:`build_report` runs every rung through the clean corpus and the
admitted attack suite and assembles the ``BENCH_robustness.json``
record: per-attack accuracies and robustness deltas per rung, suite
admission counts, and the few-shot transfer curves.

Robustness deltas are **tracked metrics**, not pass/fail gates (the
DBPal paraphrase-robustness bench convention): CI uploads the record
as an artifact so regressions show as metric drift, and only structural
properties (attack families present, configs present) are asserted.

Degraded rungs are *scored* under attack — the ladder's availability
story needs their numbers — but are **excluded from transfer curves**:
a matcher-only rung has no trained understanding to transfer, so a
curve for it would be noise presented as signal.  ``build_report``
enforces the exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.data.records import Example

from repro.core.metrics import EvalResult, evaluate
from repro.eval.attacks import AttackSuite
from repro.eval.transfer import TransferPoint, curves_to_dict
from repro.eval.validity import AdmissionReport, AdmittedVariant

__all__ = ["ModelRung", "score_examples", "score_suite", "build_report"]


@dataclass(frozen=True)
class ModelRung:
    """One (model, annotation-mode) configuration under evaluation."""

    name: str
    model: object  # duck-typed: translate(tokens, table, mode=...) -> .query
    mode: str = "full"
    #: Degraded rungs are scored but never contribute transfer curves.
    transfer_eligible: bool = True
    beam_width: int | None = field(default=None, compare=False)

    def predict(self, tokens, table):
        kwargs = {"mode": self.mode}
        if self.beam_width is not None:
            kwargs["beam_width"] = self.beam_width
        return self.model.translate(list(tokens), table, **kwargs).query


def _variant_example(admitted: AdmittedVariant) -> Example:
    variant = admitted.variant
    return Example(question=variant.question, table=variant.table,
                   query=variant.query)


def score_examples(rung: ModelRung, examples: list[Example]) -> EvalResult:
    """Clean accuracy of one rung over the evaluation corpus."""
    predictions = [rung.predict(e.question_tokens, e.table)
                   for e in examples]
    return evaluate(predictions, examples)


def score_suite(rung: ModelRung,
                admission: AdmissionReport) -> dict[str, EvalResult]:
    """Per-attack accuracy of one rung over the admitted variants."""
    results: dict[str, EvalResult] = {}
    for attack, entries in sorted(admission.admitted_by_attack().items()):
        examples = [_variant_example(entry) for entry in entries]
        predictions = [rung.predict(e.question_tokens, e.table)
                       for e in examples]
        results[attack] = evaluate(predictions, examples)
    return results


def _result_dict(result: EvalResult) -> dict:
    return {"acc_qm": result.acc_qm, "acc_ex": result.acc_ex, "n": result.n}


def build_report(rungs: list[ModelRung], examples: list[Example],
                 admission: AdmissionReport, suite: AttackSuite,
                 transfer: Mapping[str, Mapping[str, list[TransferPoint]]]
                 | None = None,
                 seed: int | None = None) -> dict:
    """Assemble the full JSON-able robustness record.

    ``transfer`` maps rung name → per-domain curves; every key must
    name a ``transfer_eligible`` rung (degraded rungs are rejected with
    ``ValueError`` — the satellite contract that degraded results are
    scored but excluded from transfer).
    """
    eligible = {rung.name for rung in rungs if rung.transfer_eligible}
    transfer = dict(transfer or {})
    for name in transfer:
        if name not in eligible:
            raise ValueError(
                f"transfer curves supplied for rung {name!r}, which is not "
                "transfer-eligible (degraded rungs are scored under attack "
                "but excluded from transfer curves)")

    counts = admission.counts()
    report: dict = {
        "seed": suite.seed if seed is None else seed,
        "suite": {
            "corpus_size": suite.corpus_size,
            "generated": len(suite.variants),
            "admitted": len(admission.admitted),
            "rejected": len(admission.rejected),
            "skipped": dict(sorted(suite.skipped.items())),
            "per_attack": {name: counts[name] for name in sorted(counts)},
        },
        "configs": {},
        "transfer": {name: curves_to_dict(curves)
                     for name, curves in sorted(transfer.items())},
    }
    for rung in rungs:
        clean = score_examples(rung, examples)
        attacked = score_suite(rung, admission)
        report["configs"][rung.name] = {
            "mode": rung.mode,
            "transfer_eligible": rung.transfer_eligible,
            "clean": _result_dict(clean),
            "attacks": {
                attack: {**_result_dict(result),
                         "delta_qm": clean.acc_qm - result.acc_qm,
                         "delta_ex": clean.acc_ex - result.acc_ex}
                for attack, result in attacked.items()
            },
        }
    return report
