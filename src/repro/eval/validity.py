"""Executor-backed admission gate for adversarial variants.

A perturbed question is only a fair evaluation item if the gold query
it carries still means something on its table.  Before any variant
enters the scored suite, :func:`admit_suite` re-executes its gold query
on the :mod:`repro.sqlengine` executor and requires:

* the query executes without error;
* for meaning-preserving attacks, the denotation equals the original
  gold query's denotation (the perturbation changed words, not truth);
* for query-updating attacks (value swaps), the new denotation is
  non-empty — the swap targeted a real cell, not a phantom;
* the perturbed question actually differs from the original.

Invalid variants are **counted and logged** (logger
``repro.eval.validity``), never silently dropped — the per-attack
admission counts ship in ``BENCH_robustness.json`` so a generator
regression shows up as a tracked metric, not a quiet shrink of the
suite.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.errors import ReproError
from repro.sqlengine import execute, results_equal

from repro.eval.attacks import AttackSuite, AttackVariant

__all__ = ["AdmittedVariant", "AdmissionReport", "check_variant",
           "admit_suite"]

logger = logging.getLogger("repro.eval.validity")


@dataclass(frozen=True)
class AdmittedVariant:
    """A variant that passed the gate, with its gold denotation."""

    variant: AttackVariant
    denotation: object


@dataclass
class AdmissionReport:
    """Outcome of gating one suite: who got in, who didn't, and why."""

    admitted: list[AdmittedVariant]
    rejected: list[tuple[AttackVariant, str]]

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-attack ``{generated, admitted, rejected}`` counts."""
        out: dict[str, dict[str, int]] = {}
        for entry in self.admitted:
            row = out.setdefault(entry.variant.attack,
                                 {"generated": 0, "admitted": 0,
                                  "rejected": 0})
            row["generated"] += 1
            row["admitted"] += 1
        for variant, _reason in self.rejected:
            row = out.setdefault(variant.attack,
                                 {"generated": 0, "admitted": 0,
                                  "rejected": 0})
            row["generated"] += 1
            row["rejected"] += 1
        return out

    def admitted_by_attack(self) -> dict[str, list[AdmittedVariant]]:
        grouped: dict[str, list[AdmittedVariant]] = {}
        for entry in self.admitted:
            grouped.setdefault(entry.variant.attack, []).append(entry)
        return grouped


def _is_empty(denotation) -> bool:
    if denotation is None:
        return True
    if isinstance(denotation, list):
        return not denotation
    if isinstance(denotation, (int, float)):
        return denotation == 0
    return False


def check_variant(variant: AttackVariant) -> tuple[object, str | None]:
    """Gate one variant.

    Returns ``(denotation, None)`` when valid, ``(None, reason)`` when
    not.  The denotation is the executor's result for the variant's
    gold query — the reference the differential tests re-execute
    against.
    """
    if variant.tokens == variant.origin_tokens:
        return None, "no-op perturbation (question unchanged)"
    try:
        denotation = execute(variant.query, variant.table)
    except ReproError as exc:
        return None, f"gold query failed to execute: {exc}"
    if variant.preserves_query:
        try:
            origin = execute(variant.origin_query, variant.table)
        except ReproError as exc:
            return None, f"original gold query failed to execute: {exc}"
        if not results_equal(origin, denotation):
            return None, "denotation drifted from the original gold query"
    elif _is_empty(denotation):
        return None, "swapped gold query has an empty denotation"
    return denotation, None


def admit_suite(suite: AttackSuite) -> AdmissionReport:
    """Gate every variant of a suite; log each rejection."""
    admitted: list[AdmittedVariant] = []
    rejected: list[tuple[AttackVariant, str]] = []
    for variant in suite.variants:
        denotation, reason = check_variant(variant)
        if reason is None:
            admitted.append(AdmittedVariant(variant, denotation))
        else:
            rejected.append((variant, reason))
            logger.info("rejected %s variant %r: %s",
                        variant.attack, variant.question, reason)
    return AdmissionReport(admitted=admitted, rejected=rejected)
