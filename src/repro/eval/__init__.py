"""Adversarial robustness and transfer-evaluation harness.

The paper's headline claim is that FGM-based adversarial question
understanding makes the NLIDB robust and transfer-learnable; this
package is the evaluation rung that measures both:

* :mod:`repro.eval.attacks` — typed, seeded generators producing
  adversarial variants of evaluation questions (lexicon paraphrases,
  counterfactual value swaps, distractor-column phrasings,
  influence-guided perturbations reusing the Section IV-C
  ``compute_influence`` machinery, and character-level typos);
* :mod:`repro.eval.validity` — the executor-backed admission gate: a
  variant only enters the suite if its gold query still executes to
  the gold denotation (invalid variants are counted and logged, never
  silently dropped);
* :mod:`repro.eval.transfer` — the few-shot transfer benchmark: fit on
  K examples + metadata for held-out :mod:`repro.data.domains` schemas
  and report per-domain accuracy curves;
* :mod:`repro.eval.report` — clean-vs-attacked scoring per model rung
  and assembly of the ``BENCH_robustness.json`` tracked-metric record.
"""

from repro.eval.attacks import (
    Attack,
    AttackSuite,
    AttackVariant,
    DistractorColumnAttack,
    InfluenceAttack,
    ParaphraseAttack,
    PhraseParaphraseAttack,
    TypoAttack,
    ValueSwapAttack,
    generate_suite,
    standard_attacks,
)
from repro.eval.report import ModelRung, build_report, score_suite
from repro.eval.transfer import TransferPoint, curves_to_dict, few_shot_curve
from repro.eval.validity import (
    AdmissionReport,
    AdmittedVariant,
    admit_suite,
    check_variant,
)

__all__ = [
    "Attack", "AttackVariant", "AttackSuite",
    "ParaphraseAttack", "PhraseParaphraseAttack", "ValueSwapAttack",
    "DistractorColumnAttack",
    "InfluenceAttack", "TypoAttack", "standard_attacks", "generate_suite",
    "AdmittedVariant", "AdmissionReport", "admit_suite", "check_variant",
    "TransferPoint", "few_shot_curve", "curves_to_dict",
    "ModelRung", "score_suite", "build_report",
]
