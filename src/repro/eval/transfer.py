"""Few-shot transfer benchmark over held-out domains (Section VII-B).

The paper's zero-shot claim is that the model separates latent
semantic structure from data-specific components; the few-shot curve
asks the follow-up production question: *how fast does accuracy climb
when K examples of an unseen schema become available?*  For each
held-out domain the benchmark fits a fresh model on the base training
corpus plus the first K domain examples (K ∈ {5, 10, 25} by default)
and scores it on a fixed evaluation slice disjoint from every support
set, so points along one curve are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.data.records import Example
from repro.errors import DataError

from repro.core.metrics import evaluate

__all__ = ["TransferPoint", "few_shot_curve", "curves_to_dict"]


@dataclass(frozen=True)
class TransferPoint:
    """One point of a per-domain transfer curve."""

    shots: int
    acc_qm: float
    acc_ex: float
    n_eval: int

    def to_dict(self) -> dict:
        return {"shots": self.shots, "acc_qm": self.acc_qm,
                "acc_ex": self.acc_ex, "n_eval": self.n_eval}


def few_shot_curve(model_factory: Callable[[], object],
                   base_train: list[Example],
                   held_out: Mapping[str, list[Example]],
                   shots: Iterable[int] = (5, 10, 25),
                   seed: int = 0,
                   eval_limit: int | None = None,
                   ) -> dict[str, list[TransferPoint]]:
    """Fit-on-K curves for every held-out domain.

    ``model_factory`` must return a fresh unfitted model exposing
    ``fit(examples)`` and ``translate(tokens, table)`` (the
    :class:`~repro.core.nlidb.NLIDB` surface); a new model is built per
    (domain, K) point so no point leaks training from another.  Each
    domain's examples are permuted once with a seed derived from
    ``[seed, domain_index]`` (domains iterated in sorted-name order, so
    the split is independent of dict ordering); the first ``max(shots)``
    form the support pool, the rest the fixed evaluation slice.
    """
    shot_list = sorted({int(k) for k in shots})
    if not shot_list:
        raise DataError("shots must name at least one K")
    if shot_list[0] < 0:
        raise DataError("shots must be non-negative")
    max_k = shot_list[-1]
    curves: dict[str, list[TransferPoint]] = {}
    for di, name in enumerate(sorted(held_out)):
        examples = held_out[name]
        if len(examples) <= max_k:
            raise DataError(
                f"held-out domain {name!r} has {len(examples)} examples; "
                f"need more than max(shots)={max_k} to keep an eval slice")
        rng = np.random.default_rng([seed, di])
        order = rng.permutation(len(examples))
        pool = [examples[int(i)] for i in order]
        support_pool, eval_slice = pool[:max_k], pool[max_k:]
        if eval_limit is not None:
            eval_slice = eval_slice[:eval_limit]
        points = []
        for k in shot_list:
            model = model_factory()
            model.fit(list(base_train) + support_pool[:k])
            predictions = [model.translate(e.question_tokens, e.table).query
                           for e in eval_slice]
            result = evaluate(predictions, eval_slice)
            points.append(TransferPoint(shots=k, acc_qm=result.acc_qm,
                                        acc_ex=result.acc_ex, n_eval=result.n))
        curves[name] = points
    return curves


def curves_to_dict(curves: Mapping[str, list[TransferPoint]]) -> dict:
    """JSON-able view of :func:`few_shot_curve` output."""
    return {name: [point.to_dict() for point in points]
            for name, points in curves.items()}
