"""Typed, seeded adversarial-attack generators.

Each attack perturbs one evaluation :class:`~repro.data.records.Example`
into an :class:`AttackVariant` carrying the perturbed question *and* the
gold query that question should map to (identical to the original for
meaning-preserving attacks, updated for counterfactual value swaps).
Whether a variant actually enters a suite is decided downstream by the
executor-backed gate in :mod:`repro.eval.validity`.

Determinism contract (mirroring :class:`repro.serving.faults.
FaultInjector`): every random decision flows from a per-(attack,
example) :class:`numpy.random.Generator` seeded as ``[seed,
attack_index, example_index]``, so the same seed over the same corpus
produces a byte-identical variant set — across runs, machines, and
attack-object instances.

The families map onto the paper's question-understanding challenges
(Section III) and the Section IV-C influence method, plus a
character-level typo family for surface-form robustness; see
DESIGN.md §8 for the full mapping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.data.records import Example
from repro.sqlengine import Condition, Operator, Query, Table
from repro.text.lexicon import PHRASE_SYNONYMS, SYNONYM_GROUPS, synonym_group_of
from repro.text.stopwords import is_stop_word
from repro.text.tokenizer import tokenize

from repro.core.mention.adversarial import compute_influence

__all__ = [
    "AttackVariant", "Attack", "ParaphraseAttack", "PhraseParaphraseAttack",
    "ValueSwapAttack", "DistractorColumnAttack", "InfluenceAttack",
    "TypoAttack", "AttackSuite", "standard_attacks", "generate_suite",
]

#: Words that cue the aggregate or comparison operator of the gold SQL
#: ("highest" → MAX, "over" → >).  Attacks never remove or rewrite
#: them: doing so would change the question's meaning while the variant
#: keeps the original gold query, making the evaluation unfair.
OPERATOR_CUES = frozenset({
    "highest", "largest", "most", "lowest", "smallest", "fewest",
    "total", "sum", "average", "mean", "count", "many", "much",
    "over", "above", "more", "below", "under", "less", "fewer",
})


@dataclass(frozen=True)
class AttackVariant:
    """One perturbed question plus the gold query it should map to."""

    attack: str
    tokens: tuple[str, ...]
    query: Query
    table: Table
    origin_tokens: tuple[str, ...]
    origin_query: Query
    note: str = ""

    @property
    def question(self) -> str:
        return " ".join(self.tokens)

    @property
    def preserves_query(self) -> bool:
        """Whether the perturbation left the gold query unchanged."""
        return (self.query is self.origin_query
                or self.query.canonical() == self.origin_query.canonical())

    def signature(self) -> tuple:
        """Byte-comparable identity used by the determinism tests."""
        return (self.attack, self.question, self.query.to_sql(),
                self.table.name, self.note)


class Attack:
    """Base class: one family of question perturbations.

    Subclasses implement :meth:`perturb`, returning ``None`` when the
    example offers no applicable perturbation (e.g. no synonym to
    substitute).  All randomness must come from the passed ``rng``.
    """

    name: str = "attack"

    def perturb(self, example: Example,
                rng: np.random.Generator) -> AttackVariant | None:
        raise NotImplementedError

    def _variant(self, example: Example, tokens: list[str],
                 query: Query | None = None, note: str = "") -> AttackVariant:
        return AttackVariant(
            attack=self.name, tokens=tuple(tokens),
            query=query if query is not None else example.query,
            table=example.table,
            origin_tokens=tuple(example.question_tokens),
            origin_query=example.query, note=note)


def _value_positions(example: Example) -> set[int]:
    return {i for m in example.mentions if m.kind == "value"
            for i in range(m.start, m.end)}


def _mention_positions(example: Example) -> set[int]:
    return {i for m in example.mentions for i in range(m.start, m.end)}


def _pick(rng: np.random.Generator, items: list):
    """rng.choice without numpy scalar coercion (keeps cell types)."""
    return items[int(rng.integers(0, len(items)))]


def _value_surface(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class ParaphraseAttack(Attack):
    """Substitute a question word with a lexicon synonym (challenge 1).

    Prefers tokens inside gold *column-mention* spans — the paraphrased
    mentions the paper's annotator must resolve non-exactly — and falls
    back to any content word with a synonym group.  Value spans and
    operator cue words are never touched, so the gold query is
    preserved by construction.
    """

    name = "paraphrase"

    def _substitutable(self, token: str) -> bool:
        return (not is_stop_word(token) and token not in OPERATOR_CUES
                and synonym_group_of(token) is not None)

    def perturb(self, example, rng):
        tokens = list(example.question_tokens)
        blocked = _value_positions(example)
        column_positions = sorted(
            {i for m in example.mentions if m.kind == "column"
             for i in range(m.start, m.end)} - blocked)
        candidates = [i for i in column_positions
                      if self._substitutable(tokens[i])]
        if not candidates:
            candidates = [i for i in range(len(tokens))
                          if i not in blocked
                          and self._substitutable(tokens[i])]
        rng.shuffle(candidates)
        for position in candidates:
            group = SYNONYM_GROUPS[synonym_group_of(tokens[position])]
            alternatives = [w for w in group
                            if w != tokens[position] and " " not in w]
            if not alternatives:
                continue
            replacement = _pick(rng, alternatives)
            note = f"{tokens[position]!r} -> {replacement!r} @ {position}"
            tokens[position] = replacement
            return self._variant(example, tokens, note=note)
        return None


class ValueSwapAttack(Attack):
    """Swap an equality condition's value for another cell (challenge 4).

    Both the question surface *and* the gold query are updated, so a
    robust model must track the new value rather than memorize the
    original pair.  The replacement is drawn from the same column of
    the table, guaranteeing the swapped gold query has a non-empty
    denotation for the validity gate to confirm.
    """

    name = "value_swap"

    def perturb(self, example, rng):
        table = example.table
        spans = {}
        for m in example.mentions:
            if m.kind == "value" and m.start < m.end:
                spans.setdefault(m.column.lower(), m)
        eligible = []
        for ci, cond in enumerate(example.query.conditions):
            span = spans.get(cond.column.lower())
            if cond.operator is not Operator.EQ or span is None:
                continue
            column_cells = [row[table.column_index(cond.column)]
                            for row in table.rows]
            alternatives = sorted(
                {_value_surface(v): v for v in column_cells
                 if _value_surface(v) != _value_surface(cond.value)}.items())
            if alternatives:
                eligible.append((ci, cond, span, alternatives))
        if not eligible:
            return None
        ci, cond, span, alternatives = _pick(rng, eligible)
        surface, new_value = _pick(rng, alternatives)
        tokens = list(example.question_tokens)
        tokens[span.start:span.end] = tokenize(surface)
        conditions = list(example.query.conditions)
        conditions[ci] = Condition(cond.column, cond.operator, new_value)
        query = Query(select_column=example.query.select_column,
                      aggregate=example.query.aggregate,
                      conditions=conditions)
        note = (f"{cond.column}: {_value_surface(cond.value)!r} -> "
                f"{surface!r}")
        return self._variant(example, tokens, query=query, note=note)


class DistractorColumnAttack(Attack):
    """Append a phrase naming a column the query does not use.

    A brittle matcher latches onto the distractor column name; the
    gold query is untouched, so the phrase must be ignored.  Mirrors
    the paper's observation that column mentions compete for the same
    surface words (Figure 7's "win"/"winning driver" confusion).
    """

    name = "distractor"

    _TEMPLATES = (
        "regardless of the {column}",
        "no matter what the {column} is",
        "ignoring the {column}",
        "whatever the {column} may be",
    )

    def perturb(self, example, rng):
        query = example.query
        used = {query.select_column.lower()}
        # where_leaves() walks the full WHERE tree, so extended-sketch
        # queries (OR/NOT) protect their condition columns too; for
        # legacy queries it is exactly the flat conditions list.
        used.update(c.column.lower() for c in query.where_leaves())
        if query.group_by is not None:
            used.add(query.group_by.lower())
        if query.having is not None:
            used.add(query.having.column.lower())
        if query.order_by is not None:
            used.add(query.order_by.column.lower())
        unused = [name for name in example.table.column_names
                  if name.lower() not in used]
        if not unused:
            return None
        column = _pick(rng, unused)
        template = _pick(rng, list(self._TEMPLATES))
        phrase = tokenize(template.format(column=column))
        tokens = list(example.question_tokens)
        if tokens and tokens[-1] == "?":
            tokens = tokens[:-1] + phrase + ["?"]
        else:
            tokens = tokens + phrase
        return self._variant(example, tokens,
                             note=f"distractor column {column!r}")


class InfluenceAttack(Attack):
    """Drop the most influential word outside the gold mention spans.

    Reuses the Section IV-C fast-gradient machinery
    (:func:`repro.core.mention.adversarial.compute_influence`): the
    word whose embedding gradient is largest w.r.t. the select column's
    mention loss is the one the classifier leans on hardest — removing
    it is the strongest single-token attack the model's own gradients
    can propose.  Gold spans and operator cues are protected so the
    question still maps to the unchanged gold query.
    """

    name = "influence_drop"

    def __init__(self, classifier):
        self.classifier = classifier

    def perturb(self, example, rng):
        if self.classifier is None \
                or not getattr(self.classifier, "_trained", False):
            return None
        tokens = list(example.question_tokens)
        if len(tokens) < 2:
            return None
        profile = compute_influence(
            self.classifier, tokens, tokenize(example.query.select_column))
        protected = _mention_positions(example)
        order = np.argsort(profile.combined)[::-1]
        target = None
        for idx in order:
            token = tokens[int(idx)]
            if int(idx) in protected or token in OPERATOR_CUES:
                continue
            if is_stop_word(token) or not any(c.isalnum() for c in token):
                continue
            target = int(idx)
            break
        if target is None:  # fall back to any unprotected glue word
            for idx in order:
                if int(idx) not in protected \
                        and tokens[int(idx)] not in OPERATOR_CUES:
                    target = int(idx)
                    break
        if target is None:
            return None
        note = f"dropped {tokens[target]!r} @ {target}"
        del tokens[target]
        return self._variant(example, tokens, note=note)


class TypoAttack(Attack):
    """Inject one character-level typo into a content word.

    Users misspell; the paper's matcher-based mention resolution is
    exact on surface forms, so a single edit-distance-1 typo in a
    column mention is a realistic stressor for the classifier's
    embedding-level robustness.  Three edit operations, chosen by the
    per-pair RNG:

    * ``swap`` — transpose two adjacent characters ("director" →
      "driector");
    * ``drop`` — delete one interior character ("director" →
      "diretor");
    * ``double`` — repeat one character ("director" → "dirrector").

    Targets prefer tokens inside gold *column-mention* spans, falling
    back to any alphabetic content word of length >= 4.  Value spans,
    operator cues, and stop words are never touched, so the gold query
    is preserved by construction; whether the typo'd question still
    resolves is exactly what the downstream validity gate and accuracy
    measurement decide.
    """

    name = "typo"

    _MIN_LEN = 4

    def _eligible(self, token: str) -> bool:
        return (len(token) >= self._MIN_LEN and token.isalpha()
                and not is_stop_word(token)
                and token not in OPERATOR_CUES)

    def _mutate(self, token: str, rng: np.random.Generator) -> str | None:
        """One edit-distance-1 variant of ``token``, or ``None``.

        Interior positions only (first/last characters anchor human
        word recognition and the matchers' prefix behaviour), and the
        result must actually differ (swapping "oo" is a no-op).
        """
        ops = ["swap", "drop", "double"]
        rng.shuffle(ops)
        positions = list(range(1, len(token) - 1))
        for op in ops:
            rng.shuffle(positions)
            for i in positions:
                if op == "swap":
                    mutated = (token[:i] + token[i + 1] + token[i]
                               + token[i + 2:]) if i + 2 < len(token) \
                        else None
                elif op == "drop":
                    mutated = token[:i] + token[i + 1:]
                else:
                    mutated = token[:i] + token[i] + token[i:]
                if mutated is not None and mutated != token:
                    return mutated
        return None

    def perturb(self, example, rng):
        tokens = list(example.question_tokens)
        blocked = _value_positions(example)
        column_positions = sorted(
            {i for m in example.mentions if m.kind == "column"
             for i in range(m.start, m.end)} - blocked)
        candidates = [i for i in column_positions
                      if self._eligible(tokens[i])]
        if not candidates:
            candidates = [i for i in range(len(tokens))
                          if i not in blocked
                          and self._eligible(tokens[i])]
        rng.shuffle(candidates)
        for position in candidates:
            mutated = self._mutate(tokens[position], rng)
            if mutated is None:
                continue
            note = f"{tokens[position]!r} -> {mutated!r} @ {position}"
            tokens[position] = mutated
            return self._variant(example, tokens, note=note)
        return None


class PhraseParaphraseAttack(Attack):
    """Substitute a multi-token phrase with a lexicon phrase synonym.

    The single-token :class:`ParaphraseAttack` cannot touch mentions
    whose surface is a phrase ("prize money", "year won") — exactly the
    paraphrases the paper's Figure 1 examples turn on.  This family
    scans the question for any ``repro.text.lexicon.PHRASE_SYNONYMS``
    member (outside gold value spans) and swaps it for another phrase
    of the same group.  Groups are meaning-preserving by construction,
    so the gold query is unchanged.
    """

    name = "phrase_paraphrase"

    def perturb(self, example, rng):
        tokens = list(example.question_tokens)
        blocked = _value_positions(example)
        matches: list[tuple[int, int, int, str]] = []
        for gid, group in enumerate(PHRASE_SYNONYMS):
            for phrase in group:
                words = tokenize(phrase)
                width = len(words)
                for start in range(len(tokens) - width + 1):
                    if tokens[start:start + width] != words:
                        continue
                    if any(i in blocked for i in range(start, start + width)):
                        continue
                    matches.append((start, width, gid, phrase))
        if not matches:
            return None
        rng.shuffle(matches)
        for start, width, gid, phrase in matches:
            alternatives = [p for p in PHRASE_SYNONYMS[gid] if p != phrase]
            if not alternatives:
                continue
            replacement = _pick(rng, alternatives)
            new_tokens = (tokens[:start] + tokenize(replacement)
                          + tokens[start + width:])
            note = f"{phrase!r} -> {replacement!r} @ {start}"
            return self._variant(example, new_tokens, note=note)
        return None


def standard_attacks(classifier=None) -> list[Attack]:
    """The standard attack families, in canonical order.

    ``classifier`` (a trained :class:`~repro.core.mention.
    column_classifier.ColumnMentionClassifier`) enables the
    influence-guided family; without one it is omitted.  New families
    append at the *end* of the list: the suite's determinism contract
    seeds each pair as ``[seed, attack_index, example_index]``, so a
    mid-list insertion would silently re-seed every later family —
    which is why :class:`PhraseParaphraseAttack` sits after
    :class:`TypoAttack` despite being a paraphrase family.
    """
    attacks: list[Attack] = [ParaphraseAttack(), ValueSwapAttack(),
                             DistractorColumnAttack()]
    if classifier is not None:
        attacks.append(InfluenceAttack(classifier))
    attacks.append(TypoAttack())
    attacks.append(PhraseParaphraseAttack())
    return attacks


@dataclass
class AttackSuite:
    """All variants generated from one corpus under one seed."""

    seed: int
    variants: list[AttackVariant]
    #: Per-attack count of examples with no applicable perturbation.
    skipped: dict[str, int]
    #: Number of source examples the suite was generated from.
    corpus_size: int = 0

    def by_attack(self) -> dict[str, list[AttackVariant]]:
        grouped: dict[str, list[AttackVariant]] = {}
        for variant in self.variants:
            grouped.setdefault(variant.attack, []).append(variant)
        return grouped

    def signature(self) -> str:
        """Canonical serialization for byte-identity assertions."""
        return json.dumps([list(v.signature()) for v in self.variants])


def generate_suite(examples: list[Example], attacks: list[Attack],
                   seed: int = 0) -> AttackSuite:
    """Run every attack over every example with per-pair seeded RNGs.

    The RNG for pair ``(attack i, example j)`` is
    ``np.random.default_rng([seed, i, j])``: independent of generation
    order and of how many variants other pairs produced, which is what
    makes the suite byte-identical run-over-run.
    """
    variants: list[AttackVariant] = []
    skipped = {attack.name: 0 for attack in attacks}
    for ai, attack in enumerate(attacks):
        for ei, example in enumerate(examples):
            rng = np.random.default_rng([seed, ai, ei])
            variant = attack.perturb(example, rng)
            if variant is None:
                skipped[attack.name] += 1
            else:
                variants.append(variant)
    return AttackSuite(seed=seed, variants=variants, skipped=skipped,
                       corpus_size=len(examples))
