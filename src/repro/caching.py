"""A bounded, thread-safe LRU cache.

Shared by the annotator's column-statistics cache and the serving
layer's translation cache.  Kept dependency-free (``collections`` +
``threading`` only) so any layer of the library may use it without
import cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``get`` promotes the entry to most-recently-used; ``put`` evicts the
    least-recently-used entry once ``maxsize`` is exceeded.  All
    operations take an internal lock, so one instance may be shared
    across threads.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        """Return the cached value (promoting it), or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite an entry, evicting the LRU one if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (eviction counter is preserved)."""
        with self._lock:
            self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> list:
        """Current keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._data.keys())
