"""A bounded, thread-safe LRU cache with hit/miss accounting.

Shared by the annotator's column-statistics cache and the serving
layer's translation cache.  Kept dependency-free (``collections`` +
``threading`` only) so any layer of the library may use it without
import cycles.

Beyond plain ``get``/``put``, :meth:`LRUCache.get_or_compute` gives
single-flight semantics: concurrent misses on one key block behind a
single computation instead of duplicating it — the behaviour a hot
per-table statistics cache needs under parallel traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class _InFlight:
    """A single in-progress computation other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``get`` promotes the entry to most-recently-used; ``put`` evicts the
    least-recently-used entry once ``maxsize`` is exceeded.  All
    operations take an internal lock, so one instance may be shared
    across threads.

    ``hits`` / ``misses`` count lookup outcomes (a coalesced
    :meth:`get_or_compute` waiter counts as a hit: it was served
    without computing).  ``hit_rate()`` summarizes them.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: dict = {}
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default=None, *, count: bool = True):
        """Return the cached value (promoting it), or ``default``.

        ``count=False`` leaves the hit/miss counters untouched — for
        bookkeeping-free double-checks (the serving layer re-checks
        under its model lock without recounting the same request).
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                if count:
                    self.misses += 1
                return default
            if count:
                self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite an entry, evicting the LRU one if full."""
        with self._lock:
            self._put_locked(key, value)

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]):
        """Return the cached value, computing (and caching) on a miss.

        Single-flight: when several threads miss the same key at once,
        exactly one runs ``compute()`` (outside the cache lock); the
        rest block until the value — or the computation's exception —
        is ready.  Different keys never block each other on compute.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                self._data.move_to_end(key)
                return value
            waiter = self._inflight.get(key)
            if waiter is None:
                waiter = _InFlight()
                self._inflight[key] = waiter
                leader = True
                self.misses += 1
            else:
                leader = False
                self.hits += 1  # coalesced: served without computing

        if not leader:
            waiter.event.wait()
            if waiter.error is not None:
                raise waiter.error
            return waiter.value

        try:
            value = compute()
        except BaseException as exc:
            waiter.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            waiter.event.set()
            raise
        with self._lock:
            self._put_locked(key, value)
            self._inflight.pop(key, None)
        waiter.value = value
        waiter.event.set()
        return value

    def hit_rate(self) -> float:
        """Fraction of counted lookups served from the cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction counters are preserved)."""
        with self._lock:
            self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> list:
        """Current keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._data.keys())

    # ------------------------------------------------------------------

    def _put_locked(self, key: Hashable, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
