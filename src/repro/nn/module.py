"""Module/Parameter abstractions mirroring the familiar layer API.

A :class:`Module` owns :class:`Parameter` tensors and child modules and
provides recursive parameter discovery, gradient zeroing, train/eval
switching, and flat state-dict (de)serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ModelError
from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "bump_generation", "current_generation"]

# Global model-generation counter.  Anything that mutates parameter data
# (optimizer steps, state-dict loads, pretrained-embedding loads) bumps
# it; inference-time float32/int8 weight snapshots are cached keyed by
# this value, so a single integer compare tells a frozen model that its
# snapshots are still valid while a fine-tune invalidates all of them at
# once.
_MODEL_GENERATION = 0


def bump_generation() -> int:
    """Record a parameter mutation; invalidates cached weight snapshots."""
    global _MODEL_GENERATION
    _MODEL_GENERATION += 1
    return _MODEL_GENERATION


def current_generation() -> int:
    """Return the current model-generation counter."""
    return _MODEL_GENERATION


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; both are discovered automatically for optimization and
    serialization.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active) on the whole tree."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Enable evaluation mode on the whole tree."""
        for module in self.modules():
            module.training = False
        return self

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name → array mapping (arrays are copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a state dict produced by :meth:`state_dict`.

        Raises :class:`repro.errors.ModelError` on any name or shape
        mismatch so silent partial loads cannot happen.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, array in state.items():
            param = params[name]
            if param.data.shape != array.shape:
                raise ModelError(
                    f"shape mismatch for {name}: model {param.data.shape} vs state {array.shape}")
            param.data = np.asarray(array, dtype=np.float64).copy()
        bump_generation()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
