"""Functional neural-network operations built on :class:`repro.nn.Tensor`.

These are numerically-stabilized compositions of tensor primitives:
softmax / log-softmax, the loss functions used by the paper's models
(cross entropy for the seq2seq decoder, binary cross entropy for the
mention classifiers), and masking helpers for variable-length batches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "masked_softmax",
    "dropout",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray | list[int]) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    ``logits`` has shape ``(batch, classes)``; ``targets`` is a length-
    ``batch`` integer vector.
    """
    targets = np.asarray(targets, dtype=np.intp)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match batch {logits.shape[0]}")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray | list[float]) -> Tensor:
    """Mean binary cross entropy computed stably from raw logits.

    Uses the identity ``BCE = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    targets = np.asarray(targets, dtype=np.float64)
    x = logits
    relu_x = x.relu()
    abs_x = x.relu() + (-x).relu()
    softplus = (1.0 + (-abs_x).exp()).log()
    loss = relu_x - x * Tensor(targets) + softplus
    return loss.mean()


def masked_softmax(logits: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is 0/False."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        mask = np.broadcast_to(mask, logits.shape)
    neg_inf = np.where(mask, 0.0, -1e9)
    return softmax(logits + Tensor(neg_inf), axis=axis)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
