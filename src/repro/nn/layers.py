"""Core feed-forward layers: Linear, Embedding, MLP, Dropout.

These layers are the building blocks shared by the paper's classifier
(Section IV-B), value detector (Section IV-D), and seq2seq translator
(Section V).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.functional import dropout as dropout_fn
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear", "Embedding", "MLP", "Dropout", "LayerNorm"]


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, scale: float = 0.1):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.uniform(rng, (num_embeddings, embedding_dim), scale))

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise ShapeError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()} max={idx.max()}")
        return self.weight.take_rows(idx)

    def load_pretrained(self, matrix: np.ndarray, freeze: bool = False) -> None:
        """Initialize the table from a pre-computed embedding matrix."""
        if matrix.shape != self.weight.data.shape:
            raise ShapeError(
                f"pretrained matrix shape {matrix.shape} != table shape "
                f"{self.weight.data.shape}")
        self.weight.data = np.asarray(matrix, dtype=np.float64).copy()
        if freeze:
            self.weight.requires_grad = False


class Dropout(Module):
    """Inverted dropout layer; a no-op in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis (used by the Transformer
    ablation)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ShapeError(
                f"LayerNorm expected last dim {self.dim}, got {x.shape}")
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / ((var + self.eps) ** 0.5)
        return normed * self.gain + self.bias


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    Used as the prediction head of the column-mention classifier and as
    the entire value-detection classifier.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator,
                 output_activation: str | None = None,
                 hidden_activation: str = "relu"):
        super().__init__()
        if len(sizes) < 2:
            raise ShapeError("MLP needs at least input and output sizes")
        if hidden_activation not in ("relu", "tanh"):
            raise ShapeError(f"unknown hidden activation {hidden_activation!r}")
        self.layers = [Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])]
        self.output_activation = output_activation
        self.hidden_activation = hidden_activation

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x)
            x = x.tanh() if self.hidden_activation == "tanh" else x.relu()
        x = self.layers[-1](x)
        if self.output_activation == "sigmoid":
            x = x.sigmoid()
        elif self.output_activation == "tanh":
            x = x.tanh()
        elif self.output_activation is not None:
            raise ShapeError(f"unknown activation {self.output_activation!r}")
        return x
