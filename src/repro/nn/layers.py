"""Core feed-forward layers: Linear, Embedding, MLP, Dropout.

These layers are the building blocks shared by the paper's classifier
(Section IV-B), value detector (Section IV-D), and seq2seq translator
(Section V).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.arena import InferenceArena, tanh_
from repro.nn.functional import dropout as dropout_fn
from repro.nn.module import Module, Parameter, bump_generation, current_generation
from repro.nn.tensor import Tensor

__all__ = ["Linear", "Embedding", "MLP", "Dropout", "LayerNorm"]


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._w32_gen = -1
        self._q8_gen = -1

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def weights32(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Return float32 ``(W, b)`` snapshots, cached per model generation."""
        gen = current_generation()
        if self._w32_gen != gen:
            self._w32 = np.ascontiguousarray(self.weight.data, dtype=np.float32)
            self._b32 = (np.ascontiguousarray(self.bias.data, dtype=np.float32)
                         if self.bias is not None else None)
            self._w32_gen = gen
        return self._w32, self._b32

    def weights_q8(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray | None]:
        """Two-plane residual int8 weights with per-row scales.

        Returns ``(q1, s1, q2, s2, b32)``: the primary int8 plane plus
        an int8 quantization of the residual ``W − q1·s1``, each with
        symmetric per *input* row scales (``W`` is stored as
        ``(in_features, out_features)``).  Per-input-row granularity
        matters because the classifier head mixes features of very
        different magnitude (LSTM states vs. O(1) similarity features);
        the residual plane bounds the dequantization error at ~1/127² of
        the row maximum, which is what keeps int8 scores within the 1e-4
        differential pin.  Dequantized weights reconstruct as
        ``q1·s1[:, None] + q2·s2[:, None]``.
        """
        gen = current_generation()
        if self._q8_gen != gen:
            w = self.weight.data

            def plane(m):
                scales = np.abs(m).max(axis=1) / 127.0
                scales[scales == 0.0] = 1.0
                q = np.clip(np.rint(m / scales[:, None]), -127, 127)
                return q.astype(np.int8), scales.astype(np.float32)

            q1, s1 = plane(w)
            q2, s2 = plane(w - q1 * s1.astype(np.float64)[:, None])
            self._q8 = (q1, s1, q2, s2,
                        np.ascontiguousarray(self.bias.data, dtype=np.float32)
                        if self.bias is not None else None)
            self._q8_gen = gen
        return self._q8

    def forward_np(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Float32 kernel twin: ``out ← x W32 + b32`` with no allocation."""
        w, b = self.weights32()
        np.matmul(x, w, out=out)
        if b is not None:
            out += b
        return out

    def forward_q8(self, x: np.ndarray, out: np.ndarray,
                   arena: InferenceArena, tag: str) -> np.ndarray:
        """int8 kernel twin: dequantize into an arena scratch, then matmul.

        Storage stays int8 (+ per-row float32 scales); the float32
        dequantized matrix lives only in a reused arena slab.
        """
        q1, s1, q2, s2, b = self.weights_q8()
        w = arena.take(f"{tag}.deq", q1.shape)
        res = arena.take(f"{tag}.res", q1.shape)
        np.multiply(q1, s1[:, None], out=w, casting="unsafe")
        np.multiply(q2, s2[:, None], out=res, casting="unsafe")
        w += res
        np.matmul(x, w, out=out)
        if b is not None:
            out += b
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, scale: float = 0.1):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.uniform(rng, (num_embeddings, embedding_dim), scale))
        self._t32_gen = -1

    def table32(self) -> np.ndarray:
        """Float32 snapshot of the table, cached per model generation."""
        gen = current_generation()
        if self._t32_gen != gen:
            self._t32 = np.ascontiguousarray(self.weight.data, dtype=np.float32)
            self._t32_gen = gen
        return self._t32

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise ShapeError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()} max={idx.max()}")
        return self.weight.take_rows(idx)

    def load_pretrained(self, matrix: np.ndarray, freeze: bool = False) -> None:
        """Initialize the table from a pre-computed embedding matrix."""
        if matrix.shape != self.weight.data.shape:
            raise ShapeError(
                f"pretrained matrix shape {matrix.shape} != table shape "
                f"{self.weight.data.shape}")
        self.weight.data = np.asarray(matrix, dtype=np.float64).copy()
        if freeze:
            self.weight.requires_grad = False
        bump_generation()


class Dropout(Module):
    """Inverted dropout layer; a no-op in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis (used by the Transformer
    ablation)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ShapeError(
                f"LayerNorm expected last dim {self.dim}, got {x.shape}")
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / ((var + self.eps) ** 0.5)
        return normed * self.gain + self.bias


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    Used as the prediction head of the column-mention classifier and as
    the entire value-detection classifier.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator,
                 output_activation: str | None = None,
                 hidden_activation: str = "relu"):
        super().__init__()
        if len(sizes) < 2:
            raise ShapeError("MLP needs at least input and output sizes")
        if hidden_activation not in ("relu", "tanh"):
            raise ShapeError(f"unknown hidden activation {hidden_activation!r}")
        self.layers = [Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])]
        self.output_activation = output_activation
        self.hidden_activation = hidden_activation

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x)
            x = x.tanh() if self.hidden_activation == "tanh" else x.relu()
        x = self.layers[-1](x)
        if self.output_activation == "sigmoid":
            x = x.sigmoid()
        elif self.output_activation == "tanh":
            x = x.tanh()
        elif self.output_activation is not None:
            raise ShapeError(f"unknown activation {self.output_activation!r}")
        return x

    def forward_np(self, x: np.ndarray, arena: InferenceArena, tag: str,
                   quantized: bool = False) -> np.ndarray:
        """Allocation-free float32 (or int8-weight) twin of :meth:`forward`.

        ``x`` is a ``(batch, in)`` float32 array; the result is an
        arena-owned ``(batch, out)`` buffer.  Only ``tanh`` hidden and
        ``sigmoid``/``tanh`` output activations are supported — the two
        configurations the frozen classifier heads use.
        """
        from repro.nn.arena import sigmoid_

        batch = x.shape[0]
        for i, layer in enumerate(self.layers):
            out = arena.take(f"{tag}.l{i}", (batch, layer.out_features))
            if quantized:
                layer.forward_q8(x, out, arena, f"{tag}.l{i}")
            else:
                layer.forward_np(x, out)
            if i < len(self.layers) - 1:
                if self.hidden_activation == "tanh":
                    tanh_(out)
                else:
                    np.maximum(out, 0.0, out=out)
            x = out
        if self.output_activation == "sigmoid":
            sigmoid_(x)
        elif self.output_activation == "tanh":
            tanh_(x)
        return x
