"""Deterministic weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so every
model in the library is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "uniform", "orthogonal", "zeros"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def uniform(rng: np.random.Generator, shape: tuple[int, ...],
            scale: float = 0.1) -> np.ndarray:
    """Uniform initialization in ``[-scale, scale]``."""
    return rng.uniform(-scale, scale, size=shape)


def orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Orthogonal initialization (useful for recurrent weights)."""
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(a)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return q


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)
