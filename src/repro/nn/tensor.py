"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class used by every neural model
in the library.  A ``Tensor`` wraps a ``numpy.ndarray`` and records the
operations applied to it; calling :meth:`Tensor.backward` walks the
recorded graph in reverse topological order and accumulates gradients.

The design goals are:

* correctness first — every op has a gradient that passes numerical
  checks (see ``tests/nn/test_tensor.py``);
* enough coverage for the paper's models (LSTM/GRU/attention/conv1d/
  embeddings) without trying to be a general framework;
* gradients *with respect to embeddings* must be easily retrievable,
  because the paper's adversarial text method (Section IV-C) is defined
  as the norm of ``dL/dE(w)``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError

__all__ = ["Tensor", "concat", "stack", "no_grad", "is_grad_enabled",
           "allocation_events"]


class _GradMode(threading.local):
    """Thread-local grad-mode switch.

    The class attribute doubles as the per-thread default, so freshly
    spawned threads start with recording *enabled* (the process-global
    behaviour callers have always seen) while ``no_grad`` entered on one
    thread no longer leaks into concurrent requests on other threads.
    """

    enabled = True


_GRAD_MODE = _GradMode()

# Count of Tensor constructions since process start.  This is the
# substrate's "allocation event" metric: every Tensor wraps (and usually
# copies into) a fresh float64 ndarray, so the delta across a request is
# a direct measure of per-request allocation traffic.  The arena kernels
# bypass Tensor entirely, which is what BENCH_inference's
# ``allocations_per_request`` cell quantifies.
_ALLOC_EVENTS = 0


def allocation_events() -> int:
    """Return the number of Tensor constructions since process start."""
    return _ALLOC_EVENTS


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_MODE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether autodiff graph recording is enabled on this thread."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` for gradient-check
        fidelity (models are small, so precision beats speed here).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name",
                 "_pending_grads")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        global _ALLOC_EVENTS
        _ALLOC_EVENTS += 1
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if _GRAD_MODE.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Gradient bookkeeping
    # ------------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs, the
        usual loss case).
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Interior node: flow into parents via the recorded closure.
            node._pending_grads = grads  # type: ignore[attr-defined]
            node._backward(node_grad)
            del node._pending_grads  # type: ignore[attr-defined]
            if not node._parents:
                node._accumulate(node_grad)

    def _flow(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route ``grad`` to ``parent`` during a backward pass."""
        if not parent.requires_grad:
            return
        if parent._backward is None and not parent._parents:
            parent._accumulate(grad)
            return
        pending = self._pending_grads  # type: ignore[attr-defined]
        key = id(parent)
        if key in pending:
            pending[key] = pending[key] + grad
        else:
            pending[key] = grad

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, _unbroadcast(grad, self.shape))
            out._flow(other, _unbroadcast(grad, other.shape))

        out = self._make(out_data, (self, other), lambda g: backward(g, out))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, -grad)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, _unbroadcast(grad * other.data, self.shape))
            out._flow(other, _unbroadcast(grad * self.data, other.shape))

        out = self._make(out_data, (self, other), lambda g: backward(g, out))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, _unbroadcast(grad / other.data, self.shape))
            out._flow(other, _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        out = self._make(out_data, (self, other), lambda g: backward(g, out))
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ShapeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad * exponent * self.data ** (exponent - 1))

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray, out=None) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                out._flow(self, grad * b)
                out._flow(other, grad * a)
            elif a.ndim == 1:
                out._flow(self, grad @ b.T)
                out._flow(other, np.outer(a, grad))
            elif b.ndim == 1:
                out._flow(self, np.outer(grad, b))
                out._flow(other, a.T @ grad)
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
                out._flow(self, _unbroadcast(ga, a.shape))
                out._flow(other, _unbroadcast(gb, b.shape))

        out = self._make(out_data, (self, other), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad * out_data)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad / self.data)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad * (1.0 - out_data ** 2))

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad * out_data * (1.0 - out_data))

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad * mask)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------
    # Reductions and reshapes
    # ------------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out=None) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._flow(self, np.broadcast_to(g, self.shape).copy())

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else (
            np.prod([self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out=None) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            full = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self.data == full)
            # Split gradient evenly across ties for determinism.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            out._flow(self, g * mask)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad.reshape(self.shape))

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes or tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray, out=None) -> None:
            out._flow(self, grad.transpose(inverse))

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray, out=None) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            out._flow(self, full)

        out = self._make(np.array(out_data, copy=True), (self,), lambda g: backward(g, out))
        return out

    def take_rows(self, indices) -> "Tensor":
        """Embedding-style lookup: gather rows by integer index array."""
        idx = np.asarray(indices, dtype=np.intp)
        out_data = self.data[idx]

        def backward(grad: np.ndarray, out=None) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            out._flow(self, full)

        out = self._make(out_data, (self,), lambda g: backward(g, out))
        return out


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis if axis >= 0 else t.ndim + axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray, out=None) -> None:
        ax = axis if axis >= 0 else grad.ndim + axis
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[ax] = slice(start, stop)
            out._flow(tensor, grad[tuple(slicer)])

    out = tensors[0]._make(out_data, tensors, lambda g: backward(g, out))
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    if not tensors:
        raise ShapeError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray, out=None) -> None:
        for i, tensor in enumerate(tensors):
            out._flow(tensor, np.take(grad, i, axis=axis))

    out = tensors[0]._make(out_data, tensors, lambda g: backward(g, out))
    return out
