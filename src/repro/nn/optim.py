"""Optimizers and gradient utilities.

Implements SGD (with momentum) and Adam, plus global-norm gradient
clipping — the paper trains with gradient clipping at threshold 5.0
(Section VII-A.2).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter, bump_generation

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        bump_generation()
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        bump_generation()
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= b1
            m += (1.0 - b1) * param.grad
            v *= b2
            v += (1.0 - b2) * (param.grad * param.grad)
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
