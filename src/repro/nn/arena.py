"""Preallocated buffer arena for allocation-free inference kernels.

The autodiff :class:`~repro.nn.tensor.Tensor` layer allocates a fresh
float64 ndarray per op, even under ``no_grad``.  For the frozen serving
path that allocation traffic is pure overhead: the hot kernels (lockstep
beam steps, batched column scoring) run the same shapes request after
request.  :class:`InferenceArena` owns a set of named, growable float32
slabs that those kernels write into via ``np.matmul(..., out=)`` and
in-place nonlinearities; after a short warmup the steady state performs
zero ndarray allocations per decoder step.

Design points:

* **Named slabs, reshaped views.** ``take(key, shape)`` returns a view
  of the slab registered under ``key``, reshaped to ``shape``.  The slab
  grows (never shrinks) when a larger request arrives — e.g. a cohort at
  the scheduler's ``max_batch`` — and every growth is counted so tests
  can assert the warm path stops growing.
* **Reset-not-freed.** ``reset()`` zeroes the bookkeeping counters but
  keeps every slab, so buffers are reused *across requests*, not just
  across decoder steps.
* **Aliasing is the caller's contract.** Two ``take`` calls with the
  same key return the same memory; kernels that need distinct live
  buffers (e.g. previous vs. next hidden state) use distinct keys and
  swap them.

The arena is intentionally not thread-safe: each model instance owns one
and serializes access through the serving layer's model lock.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InferenceArena", "sigmoid_", "tanh_", "softmax_rows_"]


class InferenceArena:
    """A registry of named, growable, reusable ndarray slabs."""

    def __init__(self) -> None:
        self._slabs: dict[str, np.ndarray] = {}
        self.grows = 0
        self.takes = 0

    def take(self, key: str, shape: tuple[int, ...],
             dtype=np.float32) -> np.ndarray:
        """Return a ``shape``-shaped view of the slab named ``key``.

        The slab is (re)allocated only when the requested element count
        exceeds its capacity or the dtype changes; otherwise the call is
        a pure reshape of existing memory.  Contents are *not* cleared —
        kernels fully overwrite what they take.
        """
        self.takes += 1
        size = 1
        for dim in shape:
            size *= dim
        slab = self._slabs.get(key)
        if slab is None or slab.size < size or slab.dtype != np.dtype(dtype):
            self._slabs[key] = slab = np.empty(max(size, 1), dtype=dtype)
            self.grows += 1
        return slab[:size].reshape(shape)

    def reset(self) -> None:
        """Reset usage counters; slabs are kept for reuse."""
        self.grows = 0
        self.takes = 0

    def stats(self) -> dict:
        """Return slab count, total bytes, and usage counters."""
        return {
            "buffers": len(self._slabs),
            "bytes": int(sum(s.nbytes for s in self._slabs.values())),
            "grows": self.grows,
            "takes": self.takes,
        }


def sigmoid_(x: np.ndarray) -> np.ndarray:
    """In-place logistic sigmoid: ``x ← 1 / (1 + exp(-x))``."""
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)
    return x


def tanh_(x: np.ndarray) -> np.ndarray:
    """In-place hyperbolic tangent."""
    np.tanh(x, out=x)
    return x


def softmax_rows_(x: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """In-place row-wise softmax over the last axis of 2-D ``x``.

    ``scratch`` must be a ``(rows, 1)`` buffer (arena-owned); it holds
    the row max and then the row sum so no temporaries are allocated.
    """
    np.amax(x, axis=1, keepdims=True, out=scratch)
    x -= scratch
    np.exp(x, out=x)
    np.sum(x, axis=1, keepdims=True, out=scratch)
    x /= scratch
    return x
