"""One-dimensional convolution for the character-level word embedder.

The paper (Section IV-B, Figure 4) builds ``E_char(w)`` by embedding each
character of a word, sliding one-dimensional convolutions of widths
``k ∈ {3,4,5,6,7}`` over the character matrix, averaging the per-slice
projections element-wise, and concatenating across widths.  The
projection is linear and shared across slices; inputs shorter than ``k``
are zero-padded so at least one slice exists.
"""

from __future__ import annotations

import numpy as np

from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.nn.arena import InferenceArena
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, stack

__all__ = ["Conv1d", "CharConvEncoder"]


class Conv1d(Module):
    """Width-``k`` 1-D convolution over a ``(length, channels)`` matrix.

    Each length-``k`` slice is flattened and passed through a shared
    linear projection; the output is the element-wise average of all
    slice projections (the paper's composition rule).
    """

    def __init__(self, width: int, in_channels: int, out_channels: int,
                 rng: np.random.Generator):
        super().__init__()
        if width < 1:
            raise ShapeError("convolution width must be >= 1")
        self.width = width
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.projection = Linear(width * in_channels, out_channels, rng)

    def forward(self, matrix: Tensor) -> Tensor:
        """Apply the convolution; returns a ``(out_channels,)`` vector."""
        if matrix.ndim != 2 or matrix.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected (length, {self.in_channels}), got {matrix.shape}")
        length = matrix.shape[0]
        if length < self.width:
            # Zero-pad so at least one slice is available.
            pad = Tensor.zeros(self.width - length, self.in_channels)
            matrix = concat([matrix, pad], axis=0)
            length = self.width
        slices = [matrix[i:i + self.width].reshape(1, self.width * self.in_channels)
                  for i in range(length - self.width + 1)]
        stacked = concat(slices, axis=0)
        projected = self.projection(stacked)
        return projected.mean(axis=0)


class CharConvEncoder(Module):
    """Multi-width character CNN producing ``E_char(w)`` for a word.

    Character embeddings are shared across convolution widths; each
    width owns its projection, and the per-width outputs are
    concatenated (Section IV-B).
    """

    def __init__(self, char_vocab_size: int, char_dim: int, out_dim_per_width: int,
                 rng: np.random.Generator, widths: tuple[int, ...] = (3, 4, 5, 6, 7)):
        super().__init__()
        from repro.nn.layers import Embedding  # local import avoids a cycle

        self.char_embedding = Embedding(char_vocab_size, char_dim, rng)
        self.convs = [Conv1d(k, char_dim, out_dim_per_width, rng) for k in widths]
        self.widths = widths
        self.out_dim = out_dim_per_width * len(widths)

    def forward(self, char_ids: list[int]) -> Tensor:
        """Encode one word given its character id sequence."""
        if not char_ids:
            raise ShapeError("CharConvEncoder received an empty character sequence")
        matrix = self.char_embedding(np.asarray(char_ids, dtype=np.intp))
        parts = [conv(matrix) for conv in self.convs]
        return concat(parts, axis=-1)

    def encode_batch(self, words_char_ids: list[list[int]]) -> Tensor:
        """Encode several words; returns ``(num_words, out_dim)``."""
        return stack([self(ids) for ids in words_char_ids], axis=0)

    def forward_np(self, char_ids: list[int], out: np.ndarray,
                   arena: InferenceArena, tag: str) -> np.ndarray:
        """Arena twin of :meth:`forward`; writes into ``out`` (out_dim,).

        Sliding windows are materialized with a single strided copy into
        a reused slab (BLAS needs contiguous rows), so the whole encoder
        performs zero heap allocations when warm.
        """
        if not char_ids:
            raise ShapeError("CharConvEncoder received an empty character sequence")
        table = self.char_embedding.table32()
        ids = np.asarray(char_ids, dtype=np.intp)
        char_dim = table.shape[1]
        length = len(ids)
        padded = max(length, max(self.widths))
        chars = arena.take(f"{tag}.chars", (padded, char_dim))
        if padded > length:
            chars[length:] = 0.0
        np.take(table, ids, axis=0, out=chars[:length])
        per = self.convs[0].out_channels
        for wi, conv in enumerate(self.convs):
            k = conv.width
            n = max(length - k + 1, 1)
            windows = as_strided(chars, shape=(n, k * char_dim),
                                 strides=(char_dim * 4, 4))
            win = arena.take(f"{tag}.win{wi}", (n, k * char_dim))
            np.copyto(win, windows)
            proj = arena.take(f"{tag}.proj{wi}", (n, per))
            conv.projection.forward_np(win, proj)
            np.mean(proj, axis=0, out=out[wi * per:(wi + 1) * per])
        return out
