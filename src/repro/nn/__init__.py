"""A minimal numpy deep-learning substrate (autodiff, layers, optimizers).

This package stands in for PyTorch/TensorFlow, which the paper used but
which are unavailable offline.  It provides reverse-mode autodiff
(:mod:`repro.nn.tensor`), the layers the paper's models need (LSTM, GRU,
bidirectional variants, 1-D character convolutions, additive attention,
embeddings, MLPs), losses, and optimizers with gradient clipping.
"""

from repro.nn.arena import InferenceArena, sigmoid_, softmax_rows_, tanh_
from repro.nn.attention import AdditiveAttention
from repro.nn.conv import CharConvEncoder, Conv1d
from repro.nn.functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    log_softmax,
    masked_softmax,
    softmax,
)
from repro.nn.layers import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, Parameter, bump_generation, current_generation
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.rnn import (
    LSTM,
    BiGRU,
    BiLSTM,
    GRU,
    GRUCell,
    LSTMCell,
    merge_steps,
    pack_steps,
)
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import (
    Tensor,
    allocation_events,
    concat,
    is_grad_enabled,
    no_grad,
    stack,
)

__all__ = [
    "Tensor", "concat", "stack", "no_grad", "is_grad_enabled",
    "allocation_events",
    "Module", "Parameter", "bump_generation", "current_generation",
    "InferenceArena", "sigmoid_", "tanh_", "softmax_rows_",
    "Linear", "Embedding", "MLP", "Dropout", "LayerNorm",
    "LSTMCell", "GRUCell", "LSTM", "BiLSTM", "GRU", "BiGRU", "pack_steps",
    "merge_steps",
    "Conv1d", "CharConvEncoder",
    "AdditiveAttention",
    "softmax", "log_softmax", "masked_softmax",
    "cross_entropy", "binary_cross_entropy_with_logits", "dropout",
    "SGD", "Adam", "clip_grad_norm",
    "save_module", "load_module",
]
