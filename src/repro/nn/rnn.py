"""Recurrent cells and sequence layers (LSTM / GRU, uni- and bi-directional).

Sequences are represented as Python lists of ``(batch, features)``
tensors — one entry per time step.  This keeps per-step autodiff graphs
simple and lets the attention layers index encoder states directly.

The stacked variants insert an affine transformation before each layer,
exactly as the paper specifies for both the classifier's question/column
LSTMs (Section IV-B) and the seq2seq encoder (Section V-B):
``x_i^(l+1) = L^(l+1)(h_i^(l))`` with ``L^l(x) = W_0^l x + b_0^l``.

Every sequence layer also has a ``forward_batch`` lockstep runner: B
variable-length sequences, packed into per-step ``(B, features)``
tensors with :func:`pack_steps`, advance through ONE cell call per time
step.  Finished lanes are length-masked with a hold update
``h ← h_new·m + h·(1−m)``; the backward direction iterates global time
from the end with the same ``t < len_b`` mask and stores each state at
its original index, so lane ``b``'s outputs match running that sequence
alone (exactly — masked lanes never contaminate live ones).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.arena import InferenceArena, sigmoid_, tanh_
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat

__all__ = ["LSTMCell", "GRUCell", "LSTM", "BiLSTM", "GRU", "BiGRU",
           "pack_steps", "merge_steps"]


def pack_steps(sequences: list[list[Tensor]], pad_to: int | None = None,
               ) -> tuple[list[Tensor], np.ndarray]:
    """Pack B per-item sequences into lockstep ``(B, features)`` steps.

    Each input sequence is a list of ``(1, features)`` tensors.  Returns
    ``(steps, lengths)`` where ``steps[t]`` stacks row ``b`` from
    sequence ``b`` (zero rows past its length) and ``lengths[b]`` is the
    true length of sequence ``b`` — the mask ``forward_batch`` needs.

    ``pad_to`` forces the packed step count beyond the natural maximum
    so separately packed batches align on global time — what
    :func:`merge_steps` needs to fuse heterogeneous groups.
    """
    if not sequences or any(not seq for seq in sequences):
        raise ShapeError("pack_steps() requires non-empty sequences")
    lengths = np.array([len(seq) for seq in sequences], dtype=np.intp)
    total = int(lengths.max())
    if pad_to is not None:
        if pad_to < total:
            raise ShapeError(
                f"pack_steps() pad_to={pad_to} is shorter than the longest "
                f"sequence ({total})")
        total = int(pad_to)
    feat = sequences[0][0].shape[-1]
    pad = Tensor.zeros(1, feat)
    steps = [concat([seq[t] if t < len(seq) else pad for seq in sequences],
                    axis=0)
             for t in range(total)]
    return steps, lengths


def merge_steps(groups: list[tuple[list, np.ndarray]],
                ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Merge separately packed lockstep batches into one union batch.

    ``groups`` is a list of ``(steps, lengths)`` pairs as produced by
    :func:`pack_steps` (each ``steps[t]`` may be a :class:`Tensor` or a
    ``(B_g, features)`` numpy array).  Groups may disagree on both batch
    size and step count — the heterogeneous-schema case, e.g. the
    encoded column states of several different tables.  Returns
    ``(steps, lengths, offsets)`` where ``steps[t]`` is a numpy
    ``(ΣB_g, features)`` array (zero rows pad groups past their own step
    count — the hold masks from ``lengths`` keep those lanes inert),
    ``lengths`` concatenates the per-group lengths, and ``offsets[g]``
    is the first row of group ``g`` so callers can slice their rows back
    out of union results.
    """
    if not groups:
        raise ShapeError("merge_steps() requires at least one group")
    mats: list[list[np.ndarray]] = []
    sizes: list[int] = []
    for steps, _lengths in groups:
        if not steps:
            raise ShapeError("merge_steps() received an empty group")
        rows = [step.numpy() if isinstance(step, Tensor)
                else np.asarray(step, dtype=np.float64) for step in steps]
        mats.append(rows)
        sizes.append(int(rows[0].shape[0]))
    feat = int(mats[0][0].shape[1])
    total = max(len(rows) for rows in mats)
    merged = [np.concatenate(
        [rows[t] if t < len(rows) else np.zeros((size, feat))
         for rows, size in zip(mats, sizes)], axis=0)
        for t in range(total)]
    lengths = np.concatenate(
        [np.asarray(lengths, dtype=np.intp) for _steps, lengths in groups])
    offsets = np.concatenate([[0], np.cumsum(sizes[:-1], dtype=np.intp)]) \
        if len(sizes) > 1 else np.zeros(1, dtype=np.intp)
    return merged, lengths, offsets


def _step_masks(lengths: np.ndarray | None, total: int,
                batch: int) -> list[Tensor] | None:
    """Per-step hold masks ``(B, 1)``, or ``None`` when nothing to mask."""
    if lengths is None:
        return None
    lengths = np.asarray(lengths, dtype=np.intp)
    if lengths.shape != (batch,):
        raise ShapeError(
            f"lengths shape {lengths.shape} does not match batch {batch}")
    if lengths.min() == total:
        return None
    return [Tensor((lengths > t).astype(np.float64).reshape(batch, 1))
            for t in range(total)]


def _masks_np(lengths: np.ndarray | None, total: int, batch: int,
              arena: InferenceArena, tag: str) -> np.ndarray | None:
    """Float32 ``(T, B, 1)`` hold masks in an arena slab, or ``None``."""
    if lengths is None:
        return None
    lengths = np.asarray(lengths, dtype=np.intp)
    if lengths.shape != (batch,):
        raise ShapeError(
            f"lengths shape {lengths.shape} does not match batch {batch}")
    if lengths.min() == total:
        return None
    masks = arena.take(tag, (total, batch, 1))
    masks[...] = lengths[None, :, None] > np.arange(total)[:, None, None]
    return masks


def _blend_(h: np.ndarray, h_new: np.ndarray, m: np.ndarray) -> None:
    """In-place hold update ``h ← h_new·m + h·(1−m)``; destroys ``h_new``."""
    np.subtract(h_new, h, out=h_new)
    h_new *= m
    h += h_new


class LSTMCell(Module):
    """A single LSTM cell with fused gates."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.gates = Linear(input_size + hidden_size, 4 * hidden_size, rng)

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Return zero hidden/memory states for ``batch`` sequences."""
        return Tensor.zeros(batch, self.hidden_size), Tensor.zeros(batch, self.hidden_size)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        if x.shape[-1] != self.input_size:
            raise ShapeError(f"LSTMCell expected input {self.input_size}, got {x.shape}")
        z = self.gates(concat([x, h], axis=-1))
        hs = self.hidden_size
        i = z[:, 0 * hs:1 * hs].sigmoid()
        f = z[:, 1 * hs:2 * hs].sigmoid()
        g = z[:, 2 * hs:3 * hs].tanh()
        o = z[:, 3 * hs:4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def step_np(self, xh: np.ndarray, c: np.ndarray, h_out: np.ndarray,
                c_out: np.ndarray, arena: InferenceArena, tag: str) -> None:
        """Allocation-free float32 twin of :meth:`forward`.

        ``xh`` is the preassembled ``(B, input+hidden)`` buffer; the
        fused gate matmul lands in an arena slab and every nonlinearity
        runs in place.  ``c_out`` may alias ``c``; ``h_out`` must be a
        distinct buffer from ``xh``.
        """
        hs = self.hidden_size
        batch = xh.shape[0]
        z = arena.take(f"{tag}.z", (batch, 4 * hs))
        self.gates.forward_np(xh, z)
        i = z[:, 0 * hs:1 * hs]
        f = z[:, 1 * hs:2 * hs]
        g = z[:, 2 * hs:3 * hs]
        o = z[:, 3 * hs:4 * hs]
        sigmoid_(i)
        sigmoid_(f)
        tanh_(g)
        sigmoid_(o)
        np.multiply(f, c, out=c_out)
        i *= g
        c_out += i
        np.tanh(c_out, out=h_out)
        h_out *= o


class GRUCell(Module):
    """A single GRU cell (update/reset gates + candidate state)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.zr = Linear(input_size + hidden_size, 2 * hidden_size, rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng)

    def initial_state(self, batch: int) -> Tensor:
        """Return a zero hidden state for ``batch`` sequences."""
        return Tensor.zeros(batch, self.hidden_size)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        if x.shape[-1] != self.input_size:
            raise ShapeError(f"GRUCell expected input {self.input_size}, got {x.shape}")
        gates = self.zr(concat([x, h], axis=-1))
        hs = self.hidden_size
        z = gates[:, :hs].sigmoid()
        r = gates[:, hs:].sigmoid()
        h_tilde = self.candidate(concat([x, r * h], axis=-1)).tanh()
        return (1.0 - z) * h + z * h_tilde

    def step_np(self, xh: np.ndarray, h: np.ndarray, h_out: np.ndarray,
                arena: InferenceArena, tag: str) -> None:
        """Allocation-free float32 twin of :meth:`forward`.

        ``xh`` is the preassembled ``(B, input+hidden)`` buffer with the
        input in columns ``[:input]`` and ``h`` copied into columns
        ``[input:]``.  The hidden columns are overwritten with ``r·h``
        for the candidate matmul, so ``xh`` is destroyed.  ``h_out`` may
        alias ``h``.
        """
        hs = self.hidden_size
        batch = xh.shape[0]
        zr = arena.take(f"{tag}.zr", (batch, 2 * hs))
        self.zr.forward_np(xh, zr)
        z = zr[:, :hs]
        r = zr[:, hs:]
        sigmoid_(z)
        sigmoid_(r)
        np.multiply(r, h, out=xh[:, self.input_size:])
        ht = arena.take(f"{tag}.ht", (batch, hs))
        self.candidate.forward_np(xh, ht)
        tanh_(ht)
        # h_out ← h + z·(ht − h), all in place
        np.subtract(ht, h, out=ht)
        ht *= z
        np.add(h, ht, out=h_out)


def _check_steps(steps: list[Tensor]) -> None:
    if not steps:
        raise ShapeError("RNN received an empty sequence")


class LSTM(Module):
    """Stacked unidirectional LSTM with per-layer affine pre-transforms."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.cells = [LSTMCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Run over a sequence; return top-layer hidden states per step."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, cell in zip(self.pre, self.cells):
            h, c = cell.initial_state(batch)
            layer_out = []
            for x in outputs:
                h, c = cell(pre(x), h, c)
                layer_out.append(h)
            outputs = layer_out
        return outputs

    def forward_batch(self, steps: list[Tensor],
                      lengths: np.ndarray | None = None,
                      reverse: bool = False) -> list[Tensor]:
        """Lockstep run over B packed sequences (see :func:`pack_steps`).

        With ``reverse=True`` every layer consumes global time from the
        end; outputs stay at their original indices, so lane ``b``
        matches a per-item run over its reversed sequence (its first
        live step is ``t = lengths[b] - 1``, from the zero state).
        """
        _check_steps(steps)
        batch = steps[0].shape[0]
        masks = _step_masks(lengths, len(steps), batch)
        order = range(len(steps) - 1, -1, -1) if reverse \
            else range(len(steps))
        outputs = list(steps)
        for pre, cell in zip(self.pre, self.cells):
            h, c = cell.initial_state(batch)
            layer_out: list[Tensor | None] = [None] * len(steps)
            for t in order:
                h_new, c_new = cell(pre(outputs[t]), h, c)
                if masks is not None:
                    m = masks[t]
                    h = h_new * m + h * (1.0 - m)
                    c = c_new * m + c * (1.0 - m)
                else:
                    h, c = h_new, c_new
                layer_out[t] = h
            outputs = layer_out
        return outputs

    def forward_batch_np(self, inputs: np.ndarray,
                         lengths: np.ndarray | None,
                         arena: InferenceArena, tag: str,
                         reverse: bool = False) -> np.ndarray:
        """Arena twin of :meth:`forward_batch` on a ``(T, B, feat)`` array.

        The per-layer pre-transform runs as ONE ``(T·B, feat)`` matmul;
        cell steps write into reused slabs.  Returns the arena-owned
        ``(T, B, hidden)`` output slab (valid until the same tags are
        taken again).
        """
        total, batch, _ = inputs.shape
        masks = _masks_np(lengths, total, batch, arena, f"{tag}.mask")
        order = range(total - 1, -1, -1) if reverse else range(total)
        cur = inputs
        for li, (pre, cell) in enumerate(zip(self.pre, self.cells)):
            hs = cell.hidden_size
            x = arena.take(f"{tag}.pre{li}", (total, batch, hs))
            pre.forward_np(cur.reshape(total * batch, -1),
                           x.reshape(total * batch, hs))
            out = arena.take(f"{tag}.out{li}", (total, batch, hs))
            h = arena.take(f"{tag}.h{li}", (batch, hs))
            c = arena.take(f"{tag}.c{li}", (batch, hs))
            hn = arena.take(f"{tag}.hn{li}", (batch, hs))
            cn = arena.take(f"{tag}.cn{li}", (batch, hs))
            xh = arena.take(f"{tag}.xh{li}", (batch, 2 * hs))
            h[...] = 0.0
            c[...] = 0.0
            for t in order:
                xh[:, :hs] = x[t]
                xh[:, hs:] = h
                cell.step_np(xh, c, hn, cn, arena, f"{tag}.cell{li}")
                if masks is not None:
                    _blend_(h, hn, masks[t])
                    _blend_(c, cn, masks[t])
                else:
                    h, hn = hn, h
                    c, cn = cn, c
                out[t] = h
            cur = out
        return cur


class BiLSTM(Module):
    """Bidirectional LSTM; output per step is ``[forward; backward]``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.forward_rnn = LSTM(input_size, hidden_size, rng, num_layers)
        self.backward_rnn = LSTM(input_size, hidden_size, rng, num_layers)

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        _check_steps(steps)
        fwd = self.forward_rnn(steps)
        bwd = list(reversed(self.backward_rnn(list(reversed(steps)))))
        return [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]

    def forward_batch(self, steps: list[Tensor],
                      lengths: np.ndarray | None = None) -> list[Tensor]:
        """Lockstep bidirectional run; per-step ``[forward; backward]``."""
        _check_steps(steps)
        fwd = self.forward_rnn.forward_batch(steps, lengths)
        bwd = self.backward_rnn.forward_batch(steps, lengths, reverse=True)
        return [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]

    def forward_batch_np(self, inputs: np.ndarray,
                         lengths: np.ndarray | None,
                         arena: InferenceArena, tag: str) -> np.ndarray:
        """Arena twin of :meth:`forward_batch`; returns ``(T, B, 2H)``."""
        total, batch, _ = inputs.shape
        hs = self.hidden_size
        fwd = self.forward_rnn.forward_batch_np(
            inputs, lengths, arena, f"{tag}.f")
        bwd = self.backward_rnn.forward_batch_np(
            inputs, lengths, arena, f"{tag}.b", reverse=True)
        out = arena.take(f"{tag}.cat", (total, batch, 2 * hs))
        out[..., :hs] = fwd
        out[..., hs:] = bwd
        return out


class GRU(Module):
    """Stacked unidirectional GRU with per-layer affine pre-transforms."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Run over a sequence; return top-layer hidden states per step."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, cell in zip(self.pre, self.cells):
            h = cell.initial_state(batch)
            layer_out = []
            for x in outputs:
                h = cell(pre(x), h)
                layer_out.append(h)
            outputs = layer_out
        return outputs

    def forward_batch(self, steps: list[Tensor],
                      lengths: np.ndarray | None = None,
                      reverse: bool = False) -> list[Tensor]:
        """Lockstep run over B packed sequences (see :class:`LSTM`)."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        masks = _step_masks(lengths, len(steps), batch)
        order = range(len(steps) - 1, -1, -1) if reverse \
            else range(len(steps))
        outputs = list(steps)
        for pre, cell in zip(self.pre, self.cells):
            h = cell.initial_state(batch)
            layer_out: list[Tensor | None] = [None] * len(steps)
            for t in order:
                h_new = cell(pre(outputs[t]), h)
                if masks is not None:
                    m = masks[t]
                    h = h_new * m + h * (1.0 - m)
                else:
                    h = h_new
                layer_out[t] = h
            outputs = layer_out
        return outputs

    def forward_batch_np(self, inputs: np.ndarray,
                         lengths: np.ndarray | None,
                         arena: InferenceArena, tag: str,
                         reverse: bool = False) -> np.ndarray:
        """Arena twin of :meth:`forward_batch`; returns ``(T, B, H)``."""
        total, batch, _ = inputs.shape
        masks = _masks_np(lengths, total, batch, arena, f"{tag}.mask")
        order = range(total - 1, -1, -1) if reverse else range(total)
        cur = inputs
        for li, (pre, cell) in enumerate(zip(self.pre, self.cells)):
            hs = cell.hidden_size
            x = arena.take(f"{tag}.pre{li}", (total, batch, hs))
            pre.forward_np(cur.reshape(total * batch, -1),
                           x.reshape(total * batch, hs))
            out = arena.take(f"{tag}.out{li}", (total, batch, hs))
            h = arena.take(f"{tag}.h{li}", (batch, hs))
            hn = arena.take(f"{tag}.hn{li}", (batch, hs))
            xh = arena.take(f"{tag}.xh{li}", (batch, 2 * hs))
            h[...] = 0.0
            for t in order:
                xh[:, :hs] = x[t]
                xh[:, hs:] = h
                cell.step_np(xh, h, hn, arena, f"{tag}.cell{li}")
                if masks is not None:
                    _blend_(h, hn, masks[t])
                else:
                    h, hn = hn, h
                out[t] = h
            cur = out
        return cur


class BiGRU(Module):
    """Stacked bidirectional GRU — the paper's seq2seq encoder backbone.

    Layer ``l+1`` consumes the concatenated forward/backward states of
    layer ``l`` through an affine transform, matching Section V-B.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else 2 * hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.fwd_cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]
        self.bwd_cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Return per-step ``[forward; backward]`` states of the top layer."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, fwd_cell, bwd_cell in zip(self.pre, self.fwd_cells, self.bwd_cells):
            inputs = [pre(x) for x in outputs]
            h = fwd_cell.initial_state(batch)
            fwd = []
            for x in inputs:
                h = fwd_cell(x, h)
                fwd.append(h)
            h = bwd_cell.initial_state(batch)
            bwd = []
            for x in reversed(inputs):
                h = bwd_cell(x, h)
                bwd.append(h)
            bwd.reverse()
            outputs = [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]
        return outputs

    def forward_batch(self, steps: list[Tensor],
                      lengths: np.ndarray | None = None) -> list[Tensor]:
        """Lockstep bidirectional run; per-step ``[forward; backward]``."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        masks = _step_masks(lengths, len(steps), batch)
        outputs = list(steps)
        for pre, fwd_cell, bwd_cell in zip(self.pre, self.fwd_cells,
                                           self.bwd_cells):
            inputs = [pre(x) for x in outputs]
            h = fwd_cell.initial_state(batch)
            fwd: list[Tensor | None] = [None] * len(steps)
            for t in range(len(steps)):
                h_new = fwd_cell(inputs[t], h)
                if masks is not None:
                    m = masks[t]
                    h = h_new * m + h * (1.0 - m)
                else:
                    h = h_new
                fwd[t] = h
            h = bwd_cell.initial_state(batch)
            bwd: list[Tensor | None] = [None] * len(steps)
            for t in range(len(steps) - 1, -1, -1):
                h_new = bwd_cell(inputs[t], h)
                if masks is not None:
                    m = masks[t]
                    h = h_new * m + h * (1.0 - m)
                else:
                    h = h_new
                bwd[t] = h
            outputs = [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]
        return outputs

    def forward_batch_np(self, inputs: np.ndarray,
                         lengths: np.ndarray | None,
                         arena: InferenceArena, tag: str) -> np.ndarray:
        """Arena twin of :meth:`forward_batch`; returns ``(T, B, 2H)``.

        Matches the Tensor layout: layer ``l+1`` consumes the previous
        layer's concatenated ``[forward; backward]`` slab through its
        affine pre-transform, run as one ``(T·B, feat)`` matmul.
        """
        total, batch, _ = inputs.shape
        masks = _masks_np(lengths, total, batch, arena, f"{tag}.mask")
        cur = inputs
        for li, (pre, fwd_cell, bwd_cell) in enumerate(
                zip(self.pre, self.fwd_cells, self.bwd_cells)):
            hs = fwd_cell.hidden_size
            x = arena.take(f"{tag}.pre{li}", (total, batch, hs))
            pre.forward_np(cur.reshape(total * batch, -1),
                           x.reshape(total * batch, hs))
            out = arena.take(f"{tag}.cat{li}", (total, batch, 2 * hs))
            h = arena.take(f"{tag}.h{li}", (batch, hs))
            hn = arena.take(f"{tag}.hn{li}", (batch, hs))
            xh = arena.take(f"{tag}.xh{li}", (batch, 2 * hs))
            for direction, cell, order in (
                    (0, fwd_cell, range(total)),
                    (1, bwd_cell, range(total - 1, -1, -1))):
                h[...] = 0.0
                lo, hi = direction * hs, (direction + 1) * hs
                for t in order:
                    xh[:, :hs] = x[t]
                    xh[:, hs:] = h
                    cell.step_np(xh, h, hn, arena, f"{tag}.cell{li}.{direction}")
                    if masks is not None:
                        _blend_(h, hn, masks[t])
                    else:
                        h, hn = hn, h
                    out[t, :, lo:hi] = h
            cur = out
        return cur
