"""Recurrent cells and sequence layers (LSTM / GRU, uni- and bi-directional).

Sequences are represented as Python lists of ``(batch, features)``
tensors — one entry per time step.  This keeps per-step autodiff graphs
simple and lets the attention layers index encoder states directly.

The stacked variants insert an affine transformation before each layer,
exactly as the paper specifies for both the classifier's question/column
LSTMs (Section IV-B) and the seq2seq encoder (Section V-B):
``x_i^(l+1) = L^(l+1)(h_i^(l))`` with ``L^l(x) = W_0^l x + b_0^l``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat

__all__ = ["LSTMCell", "GRUCell", "LSTM", "BiLSTM", "GRU", "BiGRU"]


class LSTMCell(Module):
    """A single LSTM cell with fused gates."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.gates = Linear(input_size + hidden_size, 4 * hidden_size, rng)

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Return zero hidden/memory states for ``batch`` sequences."""
        return Tensor.zeros(batch, self.hidden_size), Tensor.zeros(batch, self.hidden_size)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        if x.shape[-1] != self.input_size:
            raise ShapeError(f"LSTMCell expected input {self.input_size}, got {x.shape}")
        z = self.gates(concat([x, h], axis=-1))
        hs = self.hidden_size
        i = z[:, 0 * hs:1 * hs].sigmoid()
        f = z[:, 1 * hs:2 * hs].sigmoid()
        g = z[:, 2 * hs:3 * hs].tanh()
        o = z[:, 3 * hs:4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """A single GRU cell (update/reset gates + candidate state)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.zr = Linear(input_size + hidden_size, 2 * hidden_size, rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng)

    def initial_state(self, batch: int) -> Tensor:
        """Return a zero hidden state for ``batch`` sequences."""
        return Tensor.zeros(batch, self.hidden_size)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        if x.shape[-1] != self.input_size:
            raise ShapeError(f"GRUCell expected input {self.input_size}, got {x.shape}")
        gates = self.zr(concat([x, h], axis=-1))
        hs = self.hidden_size
        z = gates[:, :hs].sigmoid()
        r = gates[:, hs:].sigmoid()
        h_tilde = self.candidate(concat([x, r * h], axis=-1)).tanh()
        return (1.0 - z) * h + z * h_tilde


def _check_steps(steps: list[Tensor]) -> None:
    if not steps:
        raise ShapeError("RNN received an empty sequence")


class LSTM(Module):
    """Stacked unidirectional LSTM with per-layer affine pre-transforms."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.cells = [LSTMCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Run over a sequence; return top-layer hidden states per step."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, cell in zip(self.pre, self.cells):
            h, c = cell.initial_state(batch)
            layer_out = []
            for x in outputs:
                h, c = cell(pre(x), h, c)
                layer_out.append(h)
            outputs = layer_out
        return outputs


class BiLSTM(Module):
    """Bidirectional LSTM; output per step is ``[forward; backward]``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.forward_rnn = LSTM(input_size, hidden_size, rng, num_layers)
        self.backward_rnn = LSTM(input_size, hidden_size, rng, num_layers)

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        _check_steps(steps)
        fwd = self.forward_rnn(steps)
        bwd = list(reversed(self.backward_rnn(list(reversed(steps)))))
        return [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]


class GRU(Module):
    """Stacked unidirectional GRU with per-layer affine pre-transforms."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Run over a sequence; return top-layer hidden states per step."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, cell in zip(self.pre, self.cells):
            h = cell.initial_state(batch)
            layer_out = []
            for x in outputs:
                h = cell(pre(x), h)
                layer_out.append(h)
            outputs = layer_out
        return outputs


class BiGRU(Module):
    """Stacked bidirectional GRU — the paper's seq2seq encoder backbone.

    Layer ``l+1`` consumes the concatenated forward/backward states of
    layer ``l`` through an affine transform, matching Section V-B.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 1):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.pre = [Linear(input_size if l == 0 else 2 * hidden_size, hidden_size, rng)
                    for l in range(num_layers)]
        self.fwd_cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]
        self.bwd_cells = [GRUCell(hidden_size, hidden_size, rng) for _ in range(num_layers)]

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        """Return per-step ``[forward; backward]`` states of the top layer."""
        _check_steps(steps)
        batch = steps[0].shape[0]
        outputs = steps
        for pre, fwd_cell, bwd_cell in zip(self.pre, self.fwd_cells, self.bwd_cells):
            inputs = [pre(x) for x in outputs]
            h = fwd_cell.initial_state(batch)
            fwd = []
            for x in inputs:
                h = fwd_cell(x, h)
                fwd.append(h)
            h = bwd_cell.initial_state(batch)
            bwd = []
            for x in reversed(inputs):
                h = bwd_cell(x, h)
                bwd.append(h)
            bwd.reverse()
            outputs = [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]
        return outputs
