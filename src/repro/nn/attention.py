"""Bahdanau-style additive attention.

Used twice in the paper: inside the column-mention classifier (the
column-side LSTM attends over question states, Section IV-B part iii)
and inside the seq2seq decoder (Section V-B).  Both compute

``e_j = v^T tanh(W_1 s_j + W_2 query + b)``, ``α = softmax(e)``,
``context = Σ_j α_j s_j``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.arena import InferenceArena, softmax_rows_, tanh_
from repro.nn.functional import masked_softmax, softmax
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter, current_generation
from repro.nn.tensor import Tensor

__all__ = ["AdditiveAttention"]


class AdditiveAttention(Module):
    """Additive (Bahdanau) attention over a memory matrix.

    Parameters
    ----------
    memory_dim:
        Dimension of each memory vector (encoder state size).
    query_dim:
        Dimension of the query vector (decoder state / column state).
    attention_dim:
        Size of the hidden comparison space.
    """

    def __init__(self, memory_dim: int, query_dim: int, attention_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.memory_proj = Linear(memory_dim, attention_dim, rng, bias=False)
        self.query_proj = Linear(query_dim, attention_dim, rng, bias=True)
        self.v = Parameter(init.uniform(rng, (attention_dim,), 0.1))
        self._v32_gen = -1

    def v32(self) -> np.ndarray:
        """Float32 snapshot of ``v``, cached per model generation."""
        gen = current_generation()
        if self._v32_gen != gen:
            self._v32 = np.ascontiguousarray(self.v.data, dtype=np.float32)
            self._v32_gen = gen
        return self._v32

    def scores(self, memory: Tensor, query: Tensor) -> Tensor:
        """Return unnormalized attention scores ``e`` of shape ``(T,)``.

        ``memory`` is ``(T, memory_dim)``; ``query`` is ``(query_dim,)``
        or ``(1, query_dim)``.
        """
        if memory.ndim != 2:
            raise ShapeError(f"attention memory must be 2-D, got {memory.shape}")
        if query.ndim == 1:
            query = query.reshape(1, query.shape[0])
        hidden = (self.memory_proj(memory) + self.query_proj(query)).tanh()
        return hidden @ self.v

    def forward(self, memory: Tensor, query: Tensor,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Return ``(context, weights)`` for one query over the memory."""
        e = self.scores(memory, query)
        if mask is not None:
            weights = masked_softmax(e, np.asarray(mask, dtype=bool), axis=-1)
        else:
            weights = softmax(e, axis=-1)
        context = weights.reshape(1, weights.shape[0]) @ memory
        return context.reshape(memory.shape[1]), weights

    def scores_batch(self, memory: Tensor, queries: Tensor) -> Tensor:
        """Scores for B queries at once: ``(B, T)`` from ``(B, query_dim)``.

        Row ``b`` equals :meth:`scores` on ``queries[b]`` — one shared
        memory projection, one broadcast add, one flattened matmul
        instead of B independent calls.
        """
        if memory.ndim != 2:
            raise ShapeError(f"attention memory must be 2-D, got {memory.shape}")
        if queries.ndim != 2:
            raise ShapeError(f"batched queries must be 2-D, got {queries.shape}")
        t, attn = memory.shape[0], self.v.shape[0]
        b = queries.shape[0]
        hidden = (self.memory_proj(memory).reshape(1, t, attn)
                  + self.query_proj(queries).reshape(b, 1, attn)).tanh()
        return (hidden.reshape(b * t, attn) @ self.v).reshape(b, t)

    def forward_batch(self, memory: Tensor,
                      queries: Tensor) -> tuple[Tensor, Tensor]:
        """Batched :meth:`forward`: ``(contexts (B, md), weights (B, T))``."""
        weights = softmax(self.scores_batch(memory, queries), axis=-1)
        return weights @ memory, weights

    def forward_grouped(self, memories: list[Tensor], queries: Tensor,
                        slices: list[slice],
                        ) -> tuple[Tensor, list[Tensor]]:
        """Attention for query groups over *different* memories.

        The heterogeneous-schema form of :meth:`forward_batch`: query
        rows ``queries[slices[g]]`` attend over ``memories[g]``.  The
        query projection runs once over the union ``(B, query_dim)``
        matrix; scores, softmax, and the context matmul run per group
        with exactly the shapes :meth:`forward_batch` would use on that
        group alone, so group ``g``'s rows match a stand-alone call.
        Returns ``(contexts (B, memory_dim), per-group weights)``.
        """
        if queries.ndim != 2:
            raise ShapeError(f"batched queries must be 2-D, got {queries.shape}")
        if len(memories) != len(slices):
            raise ShapeError("forward_grouped() needs one slice per memory")
        attn = self.v.shape[0]
        projected = self.query_proj(queries)
        contexts = np.empty((queries.shape[0], memories[0].shape[1]))
        per_group: list[Tensor] = []
        for memory, rows in zip(memories, slices):
            if memory.ndim != 2:
                raise ShapeError(
                    f"attention memory must be 2-D, got {memory.shape}")
            t = memory.shape[0]
            b = rows.stop - rows.start
            hidden = (self.memory_proj(memory).reshape(1, t, attn)
                      + projected[rows.start:rows.stop, :]
                      .reshape(b, 1, attn)).tanh()
            scores = (hidden.reshape(b * t, attn) @ self.v).reshape(b, t)
            weights = softmax(scores, axis=-1)
            contexts[rows.start:rows.stop] = (weights @ memory).numpy()
            per_group.append(weights)
        return Tensor(contexts), per_group

    # ------------------------------------------------------------------
    # Arena kernel twins (float32, allocation-free)
    # ------------------------------------------------------------------

    def project_memory_np(self, memory: np.ndarray, arena: InferenceArena,
                          tag: str) -> np.ndarray:
        """``W_1 memory`` once per request: ``(T, md) → (T, attn)`` slab."""
        mp = arena.take(tag, (memory.shape[0], self.v.shape[0]))
        return self.memory_proj.forward_np(memory, mp)

    def scores_batch_np(self, memory_proj: np.ndarray, queries: np.ndarray,
                        arena: InferenceArena, tag: str) -> np.ndarray:
        """Arena twin of :meth:`scores_batch` given the projected memory.

        ``memory_proj`` is the ``(T, attn)`` output of
        :meth:`project_memory_np`; ``queries`` is ``(B, query_dim)``.
        Returns an arena-owned ``(B, T)`` score buffer.
        """
        t, attn = memory_proj.shape
        b = queries.shape[0]
        qp = arena.take(f"{tag}.qp", (b, attn))
        self.query_proj.forward_np(queries, qp)
        hidden = arena.take(f"{tag}.hidden", (b, t, attn))
        np.add(memory_proj[None, :, :], qp[:, None, :], out=hidden)
        tanh_(hidden)
        scores = arena.take(f"{tag}.scores", (b, t))
        np.matmul(hidden.reshape(b * t, attn), self.v32(),
                  out=scores.reshape(b * t))
        return scores

    def forward_batch_np(self, memory: np.ndarray, memory_proj: np.ndarray,
                         queries: np.ndarray, arena: InferenceArena,
                         tag: str) -> tuple[np.ndarray, np.ndarray]:
        """Arena twin of :meth:`forward_batch`: ``(contexts, weights)``.

        The returned score buffer is softmaxed in place, so it doubles
        as the weights; contexts land in their own slab.
        """
        scores = self.scores_batch_np(memory_proj, queries, arena, tag)
        softmax_rows_(scores, arena.take(f"{tag}.row", (scores.shape[0], 1)))
        contexts = arena.take(f"{tag}.ctx", (queries.shape[0], memory.shape[1]))
        np.matmul(scores, memory, out=contexts)
        return contexts, scores
