"""Save / load model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ModelError
from repro.nn.module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's state dict to a ``.npz`` archive."""
    state = module.state_dict()
    if not state:
        raise ModelError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> None:
    """Load a ``.npz`` archive into a module (strict name/shape match)."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
