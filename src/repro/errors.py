"""Shared exception hierarchy for the ``repro`` library.

Every subsystem raises errors derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError):
    """Backward pass was invoked in an invalid state."""


class SQLError(ReproError):
    """Base class for SQL substrate errors."""


class SQLParseError(SQLError):
    """The SQL text could not be parsed into a query AST."""


class SQLExecutionError(SQLError):
    """A query could not be executed against the given table."""


class SchemaError(SQLError):
    """A schema definition is invalid or a column does not exist."""


class DataError(ReproError):
    """A dataset record is malformed or a generator was misconfigured."""


class AnnotationError(ReproError):
    """Question annotation or recovery failed."""


class VocabularyError(ReproError):
    """A token could not be mapped through a vocabulary."""


class ModelError(ReproError):
    """A model was used in an invalid state (e.g. decode before fit)."""


class ServingError(ReproError):
    """Base class for serving-layer failures.

    Serving errors carry two pieces of policy-relevant context: the
    pipeline ``stage`` they occurred in (``"annotate"``, ``"translate"``,
    ``"recover"``, or ``None`` when outside a stage) and whether the
    failure is ``retryable`` — the single bit the retry policy reads.
    ``retryable`` is a class default that an instance may override, so a
    fault injector can mint transient and permanent faults from one
    class.
    """

    retryable: bool = False

    def __init__(self, message: str = "", *, stage: str | None = None,
                 retryable: bool | None = None):
        super().__init__(message)
        self.stage = stage
        if retryable is not None:
            self.retryable = retryable


class TransientServingError(ServingError):
    """A failure expected to clear on retry (timeouts, races, blips)."""

    retryable = True


class DeadlineExceeded(ServingError):
    """A request ran out of its latency budget.

    Never retryable: the budget that expired covers the retries too.
    """


class CircuitOpen(ServingError):
    """The circuit breaker is open; the full pipeline was not attempted."""


class Overloaded(ServingError):
    """The cluster front door refused admission: the global in-flight
    queue is at capacity.

    Retryable by definition — the request was never attempted, so a
    client that backs off and resubmits loses nothing.  The serving
    layer resolves the caller's future with a structured ``"failed"``
    envelope carrying this error rather than raising.
    """

    retryable = True


def is_retryable(error: BaseException) -> bool:
    """Whether the retry policy may re-attempt after ``error``.

    Reads the ``retryable`` attribute, so it also honours non-
    :class:`ServingError` exceptions that choose to carry the flag.
    """
    return bool(getattr(error, "retryable", False))
