"""Shared exception hierarchy for the ``repro`` library.

Every subsystem raises errors derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError):
    """Backward pass was invoked in an invalid state."""


class SQLError(ReproError):
    """Base class for SQL substrate errors."""


class SQLParseError(SQLError):
    """The SQL text could not be parsed into a query AST."""


class SQLExecutionError(SQLError):
    """A query could not be executed against the given table."""


class SchemaError(SQLError):
    """A schema definition is invalid or a column does not exist."""


class DataError(ReproError):
    """A dataset record is malformed or a generator was misconfigured."""


class AnnotationError(ReproError):
    """Question annotation or recovery failed."""


class VocabularyError(ReproError):
    """A token could not be mapped through a vocabulary."""


class ModelError(ReproError):
    """A model was used in an invalid state (e.g. decode before fit)."""
