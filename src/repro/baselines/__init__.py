"""Reimplemented baselines for the Table II comparison.

Each captures the architectural essence of its namesake at the same
scale as our model, so relative orderings are meaningful:

* :class:`Seq2SQLBaseline` — plain seq2seq, no annotation (Seq2SQL [49]);
* :class:`SQLNetBaseline` — sketch-based slot filling (SQLNet [46]);
* :class:`TypeSQLBaseline` — slot filling + content-derived type
  features (content-sensitive TypeSQL [48]).
"""

from repro.baselines.seq2sql import Seq2SQLBaseline
from repro.baselines.sqlnet import SQLNetBaseline
from repro.baselines.typesql import TypeSQLBaseline

__all__ = ["Seq2SQLBaseline", "SQLNetBaseline", "TypeSQLBaseline"]
