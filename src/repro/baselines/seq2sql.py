"""Seq2SQL-like baseline: plain seq2seq *without* annotation.

Represents the architectural essence of Seq2SQL [49]: an augmented
pointer seq2seq that reads the raw question plus the table header and
emits SQL tokens directly — no mention detection, no placeholder
symbols.  It shares the translator backbone with the full model, so the
Table II comparison isolates exactly the paper's contribution (the
annotation layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annotate import AnnotatedQuestion, build_annotated_sql, recover_sql
from repro.core.seq2seq.model import AnnotatedSeq2Seq, Seq2SeqConfig, TrainingPair
from repro.data.records import Example
from repro.errors import AnnotationError, ModelError, ReproError
from repro.sqlengine import Query, Table
from repro.text import WordEmbeddings, tokenize

__all__ = ["Seq2SQLBaseline"]


@dataclass
class _EmptyAnnotationFactory:
    """Produces symbol-free annotations (all references stay literal)."""

    @staticmethod
    def make(question_tokens: list[str], table: Table) -> AnnotatedQuestion:
        return AnnotatedQuestion(question_tokens=question_tokens,
                                 table=table, columns=[], values=[])


class Seq2SQLBaseline:
    """Question + header in, literal SQL tokens out."""

    def __init__(self, embeddings: WordEmbeddings | None = None,
                 config: Seq2SeqConfig | None = None):
        self.embeddings = embeddings or WordEmbeddings(dim=32)
        self.translator = AnnotatedSeq2Seq(self.embeddings,
                                           config or Seq2SeqConfig())
        self._fitted = False

    @staticmethod
    def _source(example_tokens: list[str], table: Table) -> list[str]:
        tokens = list(example_tokens) + ["|"]
        for name in table.column_names:
            tokens.extend(tokenize(name))
            tokens.append(";")
        return tokens

    @staticmethod
    def _header_tokens(table: Table) -> list[str]:
        tokens: list[str] = []
        for name in table.column_names:
            tokens.extend(tokenize(name))
        return tokens

    def fit(self, examples: list[Example], epochs: int = 10,
            lr: float = 2e-3, verbose: bool = False) -> "Seq2SQLBaseline":
        """Train on literal (question+header → SQL tokens) pairs."""
        if not examples:
            raise ModelError("fit() needs training examples")
        pairs = []
        for example in examples:
            annotation = _EmptyAnnotationFactory.make(
                example.question_tokens, example.table)
            try:
                target = build_annotated_sql(annotation, example.query,
                                             header_encoding=False)
            except ReproError:
                continue
            pairs.append(TrainingPair(
                source=self._source(example.question_tokens, example.table),
                target=target,
                header_tokens=self._header_tokens(example.table)))
        self.translator.fit(pairs, epochs=epochs, lr=lr, verbose=verbose)
        self._fitted = True
        return self

    def translate(self, question: str | list[str],
                  table: Table) -> Query | None:
        """Predict a query; ``None`` when the output is unparseable."""
        if not self._fitted:
            raise ModelError("translate() called before fit()")
        tokens = tokenize(question) if isinstance(question, str) else list(question)
        annotation = _EmptyAnnotationFactory.make(tokens, table)
        predicted = self.translator.translate(
            self._source(tokens, table), self._header_tokens(table))
        try:
            return recover_sql(predicted, annotation)
        except AnnotationError:
            return None
