"""SQLNet-like baseline: sketch-based slot filling.

Represents SQLNet [46]: the SQL is a fixed sketch

    SELECT $AGG $SELECT_COL WHERE ($COND_COL $OP $COND_VAL)*

and each slot is predicted by its own small network — no sequence
decoding.  Slots:

* ``$AGG`` — classifier over the question representation;
* ``$SELECT_COL`` / ``$COND_COL`` — column scorers matching column-name
  embeddings against the question representation;
* number of conditions — classifier (0–2);
* ``$OP`` — classifier over [question; column] features;
* ``$COND_VAL`` — statistics-scored span extraction (embedding
  similarity for text, range fit for numbers).
"""

from __future__ import annotations

import numpy as np

from repro.core.mention.value_classifier import candidate_spans
from repro.data.records import Example
from repro.errors import ModelError
from repro.nn import MLP, Adam, Linear, Module, Tensor, cross_entropy, no_grad
from repro.sqlengine import Aggregate, Condition, Operator, Query, Table
from repro.text import WordEmbeddings, column_statistics, span_statistics, tokenize

__all__ = ["SQLNetBaseline"]

_AGGS = [Aggregate.NONE, Aggregate.MAX, Aggregate.MIN, Aggregate.COUNT,
         Aggregate.SUM, Aggregate.AVG]
_OPS = [Operator.EQ, Operator.GT, Operator.LT]


class _ColumnScorer(Module):
    """score(question, column) = v·tanh(W_q q̄ + W_c c̄)."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.q_proj = Linear(dim, hidden, rng)
        self.c_proj = Linear(dim, hidden, rng)
        self.v = Linear(hidden, 1, rng, bias=False)

    def forward(self, qbar: Tensor, cbars: Tensor) -> Tensor:
        """Logits over columns; ``cbars`` is ``(n_cols, dim)``."""
        hidden = (self.c_proj(cbars) + self.q_proj(qbar)).tanh()
        return self.v(hidden).reshape(cbars.shape[0])


class SQLNetBaseline:
    """Sketch-based slot-filling text-to-SQL baseline."""

    def __init__(self, embeddings: WordEmbeddings | None = None,
                 hidden: int = 32, seed: int = 0,
                 content_sensitive: bool = False):
        self.embeddings = embeddings or WordEmbeddings(dim=32)
        self.dim = self.embeddings.dim
        self.content_sensitive = content_sensitive
        rng = np.random.default_rng(seed)
        self.agg_head = MLP([self.dim, hidden, len(_AGGS)], rng,
                            hidden_activation="tanh")
        self.ncond_head = MLP([self.dim, hidden, 3], rng,
                              hidden_activation="tanh")
        self.op_head = MLP([2 * self.dim, hidden, len(_OPS)], rng,
                           hidden_activation="tanh")
        self.select_scorer = _ColumnScorer(self.dim, hidden, rng)
        self.cond_scorer = _ColumnScorer(self.dim, hidden, rng)
        self._fitted = False

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------

    def _qbar(self, tokens: list[str]) -> np.ndarray:
        return span_statistics(tokens, self.embeddings.vector, self.dim)

    def _cbars(self, table: Table) -> np.ndarray:
        return np.stack([
            span_statistics(tokenize(name), self.embeddings.vector, self.dim)
            for name in table.column_names])

    def _parameters(self):
        return (self.agg_head.parameters() + self.ncond_head.parameters()
                + self.op_head.parameters() + self.select_scorer.parameters()
                + self.cond_scorer.parameters())

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, examples: list[Example], epochs: int = 25,
            lr: float = 5e-3, shuffle_seed: int = 0) -> "SQLNetBaseline":
        """Train all slot networks jointly."""
        if not examples:
            raise ModelError("fit() needs training examples")
        optimizer = Adam(self._parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(examples))
        for _ in range(epochs):
            rng.shuffle(order)
            for idx in order:
                example = examples[idx]
                optimizer.zero_grad()
                loss = self._example_loss(example)
                loss.backward()
                optimizer.step()
        self._fitted = True
        return self

    def _example_loss(self, example: Example) -> Tensor:
        q = example.question_tokens
        qbar = Tensor(self._qbar(q).reshape(1, -1))
        cbars = Tensor(self._cbars(example.table))
        query = example.query

        agg_logits = self.agg_head(qbar)
        loss = cross_entropy(agg_logits, [_AGGS.index(query.aggregate)])

        ncond = min(len(query.conditions), 2)
        loss = loss + cross_entropy(self.ncond_head(qbar), [ncond])

        names = [n.lower() for n in example.table.column_names]
        sel_logits = self.select_scorer(qbar, cbars).reshape(1, len(names))
        loss = loss + cross_entropy(
            sel_logits, [names.index(query.select_column.lower())])

        cond_logits = self.cond_scorer(qbar, cbars).reshape(1, len(names))
        for cond in query.conditions:
            col_idx = names.index(cond.column.lower())
            loss = loss + cross_entropy(cond_logits, [col_idx])
            cbar = cbars[col_idx].reshape(1, self.dim)
            op_in = Tensor(np.concatenate(
                [self._qbar(q), cbar.numpy().reshape(-1)]).reshape(1, -1))
            loss = loss + cross_entropy(self.op_head(op_in),
                                        [_OPS.index(cond.operator)])
        return loss

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def translate(self, question: str | list[str],
                  table: Table) -> Query | None:
        """Fill every sketch slot for one question."""
        if not self._fitted:
            raise ModelError("translate() called before fit()")
        q = tokenize(question) if isinstance(question, str) else list(question)
        with no_grad():
            qbar = Tensor(self._qbar(q).reshape(1, -1))
            cbars = Tensor(self._cbars(table))
            agg = _AGGS[int(np.argmax(self.agg_head(qbar).numpy()))]
            ncond = int(np.argmax(self.ncond_head(qbar).numpy()))
            sel_scores = self.select_scorer(qbar, cbars).numpy()
            cond_scores = self.cond_scorer(qbar, cbars).numpy()
        names = table.column_names
        select = names[int(np.argmax(sel_scores))]

        conditions = []
        used_spans: set[tuple[int, int]] = set()
        for col_idx in np.argsort(cond_scores)[::-1][:ncond]:
            column = names[int(col_idx)]
            with no_grad():
                op_in = Tensor(np.concatenate(
                    [self._qbar(q),
                     self._cbars(table)[int(col_idx)]]).reshape(1, -1))
                op = _OPS[int(np.argmax(self.op_head(op_in).numpy()))]
            value_span = self._extract_value(q, table, column, used_spans)
            if value_span is None:
                continue
            span, value = value_span
            used_spans.add(span)
            conditions.append(Condition(column, op, value))
        return Query(select_column=select, aggregate=agg,
                     conditions=conditions)

    def _extract_value(self, tokens: list[str], table: Table, column: str,
                       used: set[tuple[int, int]]):
        """Best value span for a condition column (statistics-scored)."""
        cells = table.column_values(column)
        numeric_cells = _numeric_range(cells)

        if self.content_sensitive:
            # TypeSQL-style type awareness: exact content matches win.
            cell_tokens = {tuple(tokenize(str(c))) for c in cells}
            for start in range(len(tokens)):
                for length in (3, 2, 1):
                    span = (start, start + length)
                    if span[1] > len(tokens) or span in used:
                        continue
                    if tuple(tokens[span[0]:span[1]]) in cell_tokens:
                        return span, " ".join(tokens[span[0]:span[1]])

        col_stats = column_statistics(cells, self.embeddings.vector, self.dim)
        best = None
        for start, end in candidate_spans(tokens, max_length=3):
            if (start, end) in used:
                continue
            surface = " ".join(tokens[start:end])
            try:
                number = float(surface)
            except ValueError:
                number = None
            if number is not None:
                if numeric_cells is None:
                    continue
                lo, hi = numeric_cells
                score = 1.0 if lo <= number <= hi else 0.0
                value = int(number) if number.is_integer() else number
            else:
                if numeric_cells is not None:
                    continue
                span_stats = span_statistics(tokens[start:end],
                                             self.embeddings.vector, self.dim)
                denom = (np.linalg.norm(span_stats)
                         * np.linalg.norm(col_stats)) or 1.0
                score = float(span_stats @ col_stats) / denom
                value = surface
            if score > 0 and (best is None or score > best[0]):
                best = (score, (start, end), value)
        if best is None:
            return None
        return best[1], best[2]


def _numeric_range(cells: list) -> tuple[float, float] | None:
    numbers = []
    for cell in cells:
        try:
            numbers.append(float(str(cell)))
        except ValueError:
            return None
    if not numbers:
        return None
    lo, hi = min(numbers), max(numbers)
    margin = (hi - lo) * 0.5 + 1.0
    return lo - margin, hi + margin
