"""TypeSQL-like baseline: type-aware slot filling.

TypeSQL [48] extends SQLNet with *type* features: question tokens are
tagged by matching them against database content (and, in the original,
Freebase), which sharpens ``$COND_COL``/``$COND_VAL`` prediction.  We
reproduce the content-sensitive variant the paper compares against: the
SQLNet sketch networks plus exact content matching for condition values
and content-derived type evidence for condition columns.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Example
from repro.errors import ModelError
from repro.sqlengine import Query, Table
from repro.text import WordEmbeddings, tokenize

from repro.baselines.sqlnet import SQLNetBaseline

__all__ = ["TypeSQLBaseline"]


class TypeSQLBaseline(SQLNetBaseline):
    """SQLNet sketch networks + content-based type features."""

    def __init__(self, embeddings: WordEmbeddings | None = None,
                 hidden: int = 32, seed: int = 0):
        super().__init__(embeddings, hidden=hidden, seed=seed,
                         content_sensitive=True)

    def translate(self, question: str | list[str],
                  table: Table) -> Query | None:
        """Slot filling with content-match type evidence.

        Columns whose cells literally appear in the question get a score
        boost before condition columns are chosen (the "type" signal).
        """
        if not self._fitted:
            raise ModelError("translate() called before fit()")
        q = tokenize(question) if isinstance(question, str) else list(question)
        base = super().translate(q, table)
        if base is None:
            return None

        evidence = self._content_evidence(q, table)
        if not evidence:
            return base
        # Re-rank conditions: content-matched columns replace unmatched
        # ones of equal arity.
        matched_cols = [col for col, _span in evidence]
        conditions = list(base.conditions)
        existing = {c.column.lower() for c in conditions}
        for i, cond in enumerate(conditions):
            if cond.column.lower() in {c.lower() for c in matched_cols}:
                continue
            for col, span in evidence:
                if col.lower() in existing:
                    continue
                replacement = self._extract_value(q, table, col, set())
                if replacement is None:
                    continue
                _span2, value = replacement
                conditions[i] = type(cond)(col, cond.operator, value)
                existing.add(col.lower())
                break
        return Query(select_column=base.select_column,
                     aggregate=base.aggregate, conditions=conditions)

    @staticmethod
    def _content_evidence(tokens: list[str],
                          table: Table) -> list[tuple[str, tuple[int, int]]]:
        """Columns whose cell values literally occur in the question."""
        evidence = []
        for column in table.column_names:
            for cell in table.column_values(column):
                cell_tokens = tokenize(str(cell))
                if not cell_tokens:
                    continue
                for i in range(len(tokens) - len(cell_tokens) + 1):
                    if tokens[i:i + len(cell_tokens)] == cell_tokens:
                        evidence.append((column, (i, i + len(cell_tokens))))
                        break
                else:
                    continue
                break
        return evidence
