"""Table IV(a) — zero-shot transfer to the OVERNIGHT-style domains.

The headline model (trained only on the WikiSQL-style domains) is
evaluated on five unseen sub-domains; sketch-incompatible records are
discarded, exactly as in the paper.  A second case trains on the
OVERNIGHT-style data directly (the paper's in-domain 81.4% row).

Expected shape: transfer works without retraining; BASKETBALL (opaque
stat columns) is the weakest sub-domain, common-vocabulary domains
(RECIPES / RESTAURANTS / CALENDAR) the strongest; in-domain training
beats zero-shot transfer overall.
"""

from __future__ import annotations

import common as C
from repro.core import NLIDB, evaluate
from repro.data import SUBDOMAINS


def _transfer_accuracy(model, examples):
    compatible = [e for e in examples if e.sketch_compatible]
    preds = [model.translate(e.question_tokens, e.table).query
             for e in compatible]
    return evaluate(preds, compatible), len(compatible)


def test_table4a_zero_shot_transfer(benchmark):
    model = C.full_nlidb()
    data = C.overnight_data()

    def run_all():
        out = {}
        for name in SUBDOMAINS:
            out[name] = _transfer_accuracy(model, data[name])
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    C.print_header("Table IV(a) — zero-shot transfer to OVERNIGHT-style")
    total_hits = total_n = 0
    measured = {}
    for name in SUBDOMAINS:
        result, n = results[name]
        measured[name] = result.acc_qm
        total_hits += result.acc_qm * n
        total_n += n
        C.print_row(name.upper(), f"Acc_qm={result.acc_qm:.1%} (n={n})",
                    f"{C.PAPER['overnight'][name]:.1%}")
    overall = total_hits / total_n
    C.print_row("OVERALL", f"Acc_qm={overall:.1%}",
                f"{C.PAPER['overnight']['overall']:.1%}")

    assert overall > C.scale().transfer_min_qm  # transfer happens at all
    if C.strict_shape():
        easy = max(measured["recipes"], measured["restaurants"],
                   measured["calendar"])
        assert measured["basketball"] <= easy  # hardness ordering


def test_table4a_in_domain_training(benchmark):
    """The 81.4% row: train and test on OVERNIGHT-style data."""
    data = C.overnight_data()
    flat = [e for name in SUBDOMAINS for e in data[name]
            if e.sketch_compatible]
    split = int(len(flat) * 0.7)
    train, test = flat[:split], flat[split:]

    cfg = C._base_config()
    model = NLIDB(C.embeddings(), cfg)
    model.fit(train)

    def run_eval():
        preds = [model.translate(e.question_tokens, e.table).query
                 for e in test]
        return evaluate(preds, test)

    result = benchmark.pedantic(run_eval, rounds=1, iterations=1)

    C.print_header("OVERNIGHT-style — in-domain training")
    C.print_row("train+test on OVERNIGHT-style",
                f"Acc_qm={result.acc_qm:.1%} (n={result.n})",
                f"{C.PAPER['overnight_in_domain']:.1%}")
    assert result.acc_qm > max(C.scale().transfer_min_qm, 0.05)
