"""Per-sketch accuracy benchmark over the extended SQL grammar.

Trains the headline model with ``extended_grammar=True`` on the
role-typed corpus (all eight intent families: filter, count, aggregate,
range, top-N, group-aggregate, negation, disjunction) and writes one
``BENCH_accuracy.json`` record at the repo root — a *tracked metric*
artifact (uploaded by CI next to ``BENCH_robustness.json``), not a
pass/fail gate:

* overall Acc_lf / Acc_qm / Acc_ex on the dev slice;
* the same accuracies broken out per sketch family via
  :func:`repro.core.evaluate_by_sketch`;
* a legacy-parity section: the breakout restricted to old-sketch
  (``sketch_compatible``) examples, plus a byte-identity gate asserting
  every legacy gold query's SQL rendering round-trips unchanged through
  the extended parser.

Model training depends on hash iteration order, so ``make
bench-accuracy`` pins ``PYTHONHASHSEED=0`` — under it the record
reproduces byte-for-byte at a given scale.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import common as C
from repro.core import evaluate, evaluate_by_sketch, sketch_label
from repro.sqlengine import parse_sql

SEED = 13
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_accuracy.json"

#: Accumulated across the module's tests; rewritten after each one so a
#: partial run still leaves a valid JSON artifact.
RECORD: dict = {"scale": None, "seed": SEED}


def _write_record() -> None:
    RECORD["scale"] = "standard" if C.strict_shape() else "smoke"
    RESULT_PATH.write_text(json.dumps(RECORD, indent=2, sort_keys=True) + "\n")


def _eval_slice():
    return C.role_typed_dataset().dev[:C.scale().eval_limit]


@lru_cache(maxsize=1)
def _translations():
    model = C.extended_nlidb()
    return [model.translate(e.question_tokens, e.table)
            for e in _eval_slice()]


def _result_dict(result) -> dict:
    return {"acc_lf": result.acc_lf, "acc_qm": result.acc_qm,
            "acc_ex": result.acc_ex, "n": result.n}


def test_per_sketch_accuracy(benchmark):
    examples = _eval_slice()
    translations = benchmark.pedantic(_translations, rounds=1, iterations=1)
    predictions = [t.query for t in translations]

    overall = evaluate(predictions, examples)
    by_sketch = evaluate_by_sketch(predictions, examples)
    train = C.role_typed_dataset().train
    RECORD["overall"] = _result_dict(overall)
    RECORD["by_sketch"] = {label: _result_dict(r)
                           for label, r in by_sketch.items()}
    RECORD["corpus"] = {
        "train": len(train),
        "eval": len(examples),
        "train_extended_fraction":
            sum(not e.sketch_compatible for e in train) / len(train),
    }
    _write_record()

    C.print_header("Extended grammar — per-sketch accuracy (dev)")
    C.print_row("overall", overall.as_row())
    for label, result in by_sketch.items():
        C.print_row(f"  {label}", result.as_row())

    # Structural floors only — the accuracies themselves are tracked
    # metrics, not gates.
    assert overall.n == len(examples) >= 1
    assert sum(r.n for r in by_sketch.values()) == overall.n
    train_labels = {sketch_label(e.query) for e in train}
    assert {"filter", "count", "aggregate", "range", "topn", "group_agg",
            "negation", "disjunction"} <= train_labels
    assert 0.0 < RECORD["corpus"]["train_extended_fraction"] < 1.0


def test_legacy_subset_parity():
    examples = _eval_slice()
    predictions = [t.query for t in _translations()]
    legacy = [(p, e) for p, e in zip(predictions, examples)
              if e.sketch_compatible]
    legacy_preds = [p for p, _ in legacy]
    legacy_examples = [e for _, e in legacy]

    result = evaluate(legacy_preds, legacy_examples)
    RECORD["legacy_subset"] = _result_dict(result)
    RECORD["legacy_subset"]["by_sketch"] = {
        label: _result_dict(r)
        for label, r in evaluate_by_sketch(legacy_preds,
                                           legacy_examples).items()}
    _write_record()

    C.print_header("Extended grammar — legacy (old-sketch) subset")
    C.print_row("legacy subset", result.as_row())

    assert result.n >= 1
    # Byte-identity gate: the extended parser must render every legacy
    # gold query back to the exact same SQL string.
    for example in legacy_examples:
        sql = example.query.to_sql()
        assert parse_sql(sql).to_sql() == sql
        assert parse_sql(sql) == example.query
    # Legacy labels only on the legacy subset.
    labels = set(RECORD["legacy_subset"]["by_sketch"])
    assert labels <= {"filter", "count", "aggregate", "range"}
