"""Table IV(b) — transfer to the ParaphraseBench-style benchmark.

The WikiSQL-trained model answers patients-table questions across six
controlled linguistic-variation categories.  Expected shape: naive and
syntactic variants score highest, lexical/semantic substantially lower,
and the under-specified "missing" category collapses toward zero
(paper: 3.86%).
"""

from __future__ import annotations

import common as C
from repro.core import evaluate
from repro.data import CATEGORIES


def test_table4b_paraphrase_bench(benchmark):
    model = C.full_nlidb()
    data = C.paraphrase_data()

    def run_all():
        out = {}
        for category in CATEGORIES:
            examples = data[category]
            preds = [model.translate(e.question_tokens, e.table).query
                     for e in examples]
            out[category] = evaluate(preds, examples)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    C.print_header("Table IV(b) — ParaphraseBench-style transfer")
    for category in CATEGORIES:
        result = results[category]
        C.print_row(category.upper(),
                    f"Acc_qm={result.acc_qm:.1%} (n={result.n})",
                    f"{C.PAPER['paraphrase'][category]:.1%}")

    # Shape assertions with generous slack (standard scale only).
    if C.strict_shape():
        assert results["naive"].acc_qm >= results["missing"].acc_qm
        assert results["missing"].acc_qm <= 0.35  # under-specified collapses
