"""Extension ablations beyond the paper's own (DESIGN.md Section 5).

* influence norm: ℓ1 vs ℓ2 (paper) vs ℓ∞ for FGM span localization;
* beam width 1 vs 5 for decoding;
* mention resolution: dependency-tree distance vs linear token distance;
* contrastive influence profiles (our extension) vs raw profiles.
"""

from __future__ import annotations

import numpy as np
import pytest

import common as C
from repro.core import evaluate
from repro.core.annotator import AnnotatorConfig
from repro.core.mention import compute_influence, locate_mention
from repro.text import tokenize


def _gold_column_mentions(example):
    return [m for m in example.mentions
            if m.kind == "column" and not m.is_implicit]


def _span_overlap_rate(classifier, examples, norm: str,
                       contrastive: bool = False) -> float:
    from repro.core.mention import contrastive_profile
    hits = total = 0
    for example in examples:
        tokens = example.question_tokens
        mentions = _gold_column_mentions(example)
        if contrastive:
            profiles = {m.column: compute_influence(
                classifier, tokens, tokenize(m.column), norm=norm)
                for m in mentions}
        for mention in mentions:
            profile = compute_influence(classifier, tokens,
                                        tokenize(mention.column), norm=norm)
            if contrastive:
                others = [p for c, p in profiles.items()
                          if c != mention.column]
                profile = contrastive_profile(profile, others)
            start, end = locate_mention(profile)
            hits += (start < mention.end and mention.start < end)
            total += 1
    return hits / max(total, 1)


@pytest.mark.parametrize("norm", ["l1", "l2", "linf"])
def test_ablation_influence_norm(benchmark, norm):
    classifier = C.full_nlidb().annotator.column_classifier
    examples = C.dataset().dev[:20]

    rate = benchmark.pedantic(
        lambda: _span_overlap_rate(classifier, examples, norm),
        rounds=1, iterations=1)

    C.print_header(f"Ablation — influence norm {norm}")
    C.print_row(f"gold-span overlap ({norm})", f"{rate:.1%}")
    assert rate >= C.scale().transfer_min_qm


def test_ablation_contrastive_influence(benchmark):
    classifier = C.full_nlidb().annotator.column_classifier
    examples = C.dataset().dev[:20]

    contrastive = benchmark.pedantic(
        lambda: _span_overlap_rate(classifier, examples, "l2",
                                   contrastive=True),
        rounds=1, iterations=1)
    raw = _span_overlap_rate(classifier, examples, "l2")

    C.print_header("Ablation — contrastive influence (extension)")
    C.print_row("raw profile overlap", f"{raw:.1%}")
    C.print_row("contrastive profile overlap", f"{contrastive:.1%}")
    assert contrastive >= C.scale().transfer_min_qm


def test_ablation_beam_width(benchmark):
    model = C.full_nlidb()
    examples = C.dataset().dev[:25]

    def decode(width):
        return [model.translate(e.question_tokens, e.table,
                                beam_width=width).query for e in examples]

    greedy = benchmark.pedantic(lambda: decode(1), rounds=1, iterations=1)
    beam = [t.query for t in C.translations("ours", "dev", limit=25)]

    greedy_result = evaluate(greedy, examples)
    beam_result = evaluate(beam, examples)
    C.print_header("Ablation — beam width (decode)")
    C.print_row("width 1 (greedy)", f"qm={greedy_result.acc_qm:.1%}")
    C.print_row("width 5 (paper)", f"qm={beam_result.acc_qm:.1%}")
    assert beam_result.acc_qm >= greedy_result.acc_qm - 0.08


def test_ablation_dependency_resolution(benchmark):
    """Dependency-tree pairing vs naive token distance (Section IV-E)."""
    annotator = C.full_nlidb().annotator
    examples = [e for e in C.dataset().dev
                if len(e.query.conditions) >= 2][:20]
    if not examples:
        pytest.skip("no multi-condition examples in the sample")

    def pair_accuracy(use_dependency: bool) -> float:
        original = annotator.config.use_dependency_resolution
        annotator.config = AnnotatorConfig(
            **{**vars(annotator.config),
               "use_dependency_resolution": use_dependency})
        hits = total = 0
        try:
            for example in examples:
                annotation = annotator.annotate(example.question_tokens,
                                                example.table)
                for cond in example.query.conditions:
                    value = annotation.value_annotation(cond.column)
                    gold = " ".join(tokenize(str(cond.value)))
                    hits += (value is not None and value.surface == gold)
                    total += 1
        finally:
            annotator.config = AnnotatorConfig(
                **{**vars(annotator.config),
                   "use_dependency_resolution": original})
        return hits / max(total, 1)

    with_tree = benchmark.pedantic(lambda: pair_accuracy(True),
                                   rounds=1, iterations=1)
    without = pair_accuracy(False)

    C.print_header("Ablation — mention resolution strategy")
    C.print_row("dependency-tree distance (paper)", f"{with_tree:.1%}")
    C.print_row("linear token distance", f"{without:.1%}")
    assert with_tree >= without - 0.10
