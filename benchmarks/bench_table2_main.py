"""Table II — main comparison and ablations on the WikiSQL-style dataset.

Regenerates every row of the paper's Table II: the Annotated Seq2seq
model, its four component ablations, the "+Transformer" swap, and the
reimplemented baselines (Seq2SQL, SQLNet, TypeSQL).  The benchmark
timers measure inference over the evaluation slice; training happens in
cached setup (see ``common.py``).

Expected shape (not absolute numbers): ours beats the plain seq2seq by
a wide margin, every ablation scores at or below the full model, and
the Transformer variant underperforms the GRU seq2seq at this data
scale.
"""

from __future__ import annotations

import pytest

import common as C

_ABLATIONS = ["half_hidden", "no_append", "no_copy", "no_header",
              "transformer"]
_BASELINES = ["seq2sql", "sqlnet", "typesql"]

_LABELS = {
    "ours": "Annotated Seq2seq (Ours)",
    "half_hidden": "- Half Hidden Size",
    "no_append": "- Column Name Appending",
    "no_copy": "- Copy Mechanism",
    "no_header": "- Table Header Encoding",
    "transformer": "- seq2seq + Transformer",
    "seq2sql": "Seq2SQL-like",
    "sqlnet": "SQLNet-like",
    "typesql": "TypeSQL-like (content sensitive)",
}


def _paper_row(key: str) -> str:
    ref = C.PAPER[key]
    parts = []
    for metric in ("lf", "qm", "ex"):
        value = ref.get(metric)
        parts.append("-" if value is None else f"{value:.1%}")
    return " / ".join(parts)


def _measured_row(result) -> str:
    return (f"lf={result.acc_lf:.1%} qm={result.acc_qm:.1%} "
            f"ex={result.acc_ex:.1%}")


def test_table2_ours(benchmark):
    """Headline row: dev and test metrics for the full model."""
    model = C.full_nlidb()
    dev_examples = C.dataset().dev

    def run_inference():
        return [model.translate(e.question_tokens, e.table).query
                for e in dev_examples[:10]]

    benchmark.pedantic(run_inference, rounds=1, iterations=1)

    C.print_header("Table II — main comparison (WikiSQL-style)")
    for split in ("dev", "test"):
        result, _preds, _ex = C.eval_split("ours", split)
        C.print_row(f"{_LABELS['ours']} [{split}]", _measured_row(result),
                    _paper_row("ours"))
    test_result, _, _ = C.eval_split("ours", "test")
    assert test_result.acc_qm > C.scale().headline_min_qm
    assert test_result.acc_ex >= test_result.acc_qm - 0.05


@pytest.mark.parametrize("name", _ABLATIONS)
def test_table2_ablation(benchmark, name):
    """Ablation rows: each component's removal lowers accuracy."""
    limit = C.scale().eval_limit
    model = C.ablation_nlidb(name)
    examples = C.dataset().test[:8]

    benchmark.pedantic(
        lambda: [model.translate(e.question_tokens, e.table).query
                 for e in examples],
        rounds=1, iterations=1)

    result, _preds, _ex = C.eval_split(f"ablation:{name}", "test",
                                       limit=limit)
    ours, _, _ = C.eval_split("ours", "test", limit=limit)
    C.print_header(f"Table II — ablation: {_LABELS[name]}")
    C.print_row(_LABELS[name], _measured_row(result), _paper_row(name))
    C.print_row("(full model)", _measured_row(ours), _paper_row("ours"))
    # Shape check with slack: the paper's ablation deltas are ≤ 1.2 pts
    # on 15k test examples; on 50 examples at 1-CPU scale they are below
    # sample noise, so we only assert the ablation does not *decisively*
    # beat the full model.
    assert result.acc_qm <= ours.acc_qm + 0.15


@pytest.mark.parametrize("name", _BASELINES)
def test_table2_baseline(benchmark, name):
    """Baseline rows: relative ordering versus our model."""
    limit = C.scale().eval_limit
    model = C.baseline_model(name)
    examples = C.dataset().test[:8]

    benchmark.pedantic(
        lambda: [model.translate(e.question_tokens, e.table)
                 for e in examples],
        rounds=1, iterations=1)

    result, _preds, _ex = C.eval_split(name, "test", limit=limit)
    ours, _, _ = C.eval_split("ours", "test", limit=limit)
    C.print_header(f"Table II — baseline: {_LABELS[name]}")
    C.print_row(_LABELS[name], _measured_row(result), _paper_row(name))
    C.print_row(_LABELS["ours"], _measured_row(ours), _paper_row("ours"))
    if name == "seq2sql":
        # The paper's central claim: annotation beats plain seq2seq.
        assert ours.acc_qm > result.acc_qm


def test_table2_reference_rows(benchmark):
    """Rows we cite from their papers (no reimplementation): PT-MAML,
    Coarse2Fine.  Printed for completeness of the table."""
    def emit():
        C.print_header("Table II — cited rows (from the original papers)")
        C.print_row("PT-MAML [15]", "lf=62.8% qm=- ex=68.0%")
        C.print_row("Coarse2Fine [5]", "lf=71.7% qm=- ex=78.5%")

    benchmark.pedantic(emit, rounds=1, iterations=1)
