"""Adversarial robustness + few-shot transfer benchmark.

Runs the :mod:`repro.eval` harness over the headline model and writes
one ``BENCH_robustness.json`` record at the repo root — a *tracked
metric* artifact (uploaded by CI next to ``BENCH_inference.json``),
not a pass/fail gate:

* attack suite — clean accuracy and per-attack accuracy/robustness
  deltas for two ladder rungs: ``full_adversarial`` (the paper's
  pipeline) and ``matcher_only`` (the serving layer's degraded
  context-free rung), over the five standard attack families
  (paraphrase, value swap, distractor column, influence drop, and
  character-level typo);
* few-shot transfer — K ∈ {0, 5, 10, 25}-shot accuracy curves on two
  held-out domains, full rung only (degraded rungs are excluded from
  transfer by contract).

The attack suite is fully seeded; model training additionally depends
on hash iteration order, so ``make bench-robustness`` pins
``PYTHONHASHSEED=0`` — under it the record reproduces byte-for-byte at
a given scale.
"""

from __future__ import annotations

import json
from pathlib import Path

import common as C
from repro.eval import (
    ModelRung,
    admit_suite,
    build_report,
    curves_to_dict,
    few_shot_curve,
    generate_suite,
    standard_attacks,
)

SEED = 11
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

#: Accumulated across the module's tests; rewritten after each one so a
#: partial run still leaves a valid JSON artifact.
RECORD: dict = {"scale": None, "seed": SEED}


def _write_record() -> None:
    RECORD["scale"] = "standard" if C.strict_shape() else "smoke"
    RESULT_PATH.write_text(json.dumps(RECORD, indent=2, sort_keys=True) + "\n")


def test_attack_suite_robustness(benchmark):
    model = C.full_nlidb()
    examples = C.dataset().dev[:C.scale().robustness_eval_limit]
    attacks = standard_attacks(model.annotator.column_classifier)
    suite = generate_suite(examples, attacks, seed=SEED)
    admission = admit_suite(suite)
    rungs = [
        ModelRung("full_adversarial", model, mode="full"),
        ModelRung("matcher_only", model, mode="context_free",
                  transfer_eligible=False),
    ]

    report = benchmark.pedantic(
        lambda: build_report(rungs, examples, admission, suite, seed=SEED),
        rounds=1, iterations=1)
    RECORD["suite"] = report["suite"]
    RECORD["configs"] = report["configs"]
    _write_record()

    C.print_header("Robustness — clean vs attacked accuracy per rung")
    for name, config in report["configs"].items():
        C.print_row(f"{name} clean",
                    f"Acc_qm={config['clean']['acc_qm']:.1%} "
                    f"(n={config['clean']['n']})")
        for attack, row in sorted(config["attacks"].items()):
            C.print_row(f"  {attack}",
                        f"Acc_qm={row['acc_qm']:.1%} "
                        f"delta={row['delta_qm']:+.1%} (n={row['n']})")
    C.print_row("suite admitted/generated",
                f"{report['suite']['admitted']}/{report['suite']['generated']}"
                f" (rejected {report['suite']['rejected']})")

    # Structural floors only — the accuracies themselves are tracked
    # metrics, not gates.
    assert len(report["configs"]) >= 2
    for config in report["configs"].values():
        assert len(config["attacks"]) >= 4
        assert all(row["n"] >= 1 for row in config["attacks"].values())
    assert report["suite"]["admitted"] >= 1
    counts = report["suite"]["per_attack"]
    assert all(row["generated"] == row["admitted"] + row["rejected"]
               for row in counts.values())


def test_few_shot_transfer(benchmark):
    held = C.heldout_data()
    shots = C.scale().transfer_shots

    curves = benchmark.pedantic(
        lambda: few_shot_curve(C.transfer_model_factory, C.dataset().train,
                               held, shots=shots, seed=SEED),
        rounds=1, iterations=1)
    RECORD["transfer"] = {"full_adversarial": curves_to_dict(curves)}
    _write_record()

    C.print_header("Few-shot transfer — held-out domains (full rung)")
    for name, points in curves.items():
        row = "  ".join(f"K={p.shots}: {p.acc_qm:.1%}" for p in points)
        C.print_row(name, row)

    assert len(curves) >= 2
    for points in curves.values():
        assert [p.shots for p in points] == sorted(set(shots))
        # One fixed evaluation slice per domain, disjoint from supports.
        assert len({p.n_eval for p in points}) == 1
        assert points[0].n_eval >= 1
