"""Table III — query-match accuracy before vs after annotation recovery.

``Acc_before`` compares the predicted annotated SQL ``sᵃ`` against the
gold annotated target in *symbol space* (``c_i`` vs ``g_j`` mismatches
count as errors); ``Acc_after`` compares the recovered real SQL against
the gold query.  The paper's finding — recovery never hurts and usually
helps, because distinct symbols can resolve to the same column — should
reproduce.
"""

from __future__ import annotations

import pytest

import common as C
from repro.core import annotated_match, build_annotated_sql

_MODELS = [("ours", "Annotated Seq2seq (Ours)"),
           ("ablation:half_hidden", "- Half Hidden Size"),
           ("ablation:no_header", "- Table Header Encoding"),
           ("ablation:no_append", "- Column Name Appending"),
           ("ablation:no_copy", "- Copy Mechanism")]


def _before_after(model_key: str, split: str) -> tuple[float, float, int]:
    model = C._nlidb_for(model_key)
    trans = C.translations(model_key, split)
    examples = getattr(C.dataset(), split)[:len(trans)]
    before = after = 0
    for example, translation in zip(examples, trans):
        gold_target = build_annotated_sql(
            translation.annotation, example.query,
            header_encoding=model.config.header_encoding)
        if annotated_match(translation.predicted_annotated_sql, gold_target):
            before += 1
        if (translation.query is not None
                and translation.query.query_match_equal(example.query)):
            after += 1
    n = len(examples)
    return before / n, after / n, n


@pytest.mark.parametrize("model_key,label", _MODELS)
def test_table3_recovery(benchmark, model_key, label):
    trans = C.translations(model_key, "test")
    examples = getattr(C.dataset(), "test")[:len(trans)]
    model = C._nlidb_for(model_key)

    def measure():
        return _before_after(model_key, "test")

    before, after, n = benchmark.pedantic(measure, rounds=1, iterations=1)

    paper_before, paper_after = C.PAPER["recovery"][
        model_key.replace("ablation:", "")]
    C.print_header(f"Table III — recovery: {label}")
    C.print_row("Acc_before (symbol space)", f"{before:.1%}",
                f"{paper_before:.1%}")
    C.print_row("Acc_after (recovered SQL)", f"{after:.1%}",
                f"{paper_after:.1%}")
    # The paper's qualitative claim: recovery does not hurt.
    assert after >= before - 0.03, (before, after, n)
