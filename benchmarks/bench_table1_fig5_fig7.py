"""Table I + Figures 5/7 — adversarial mention-detection case studies.

Regenerates the paper's qualitative evidence: for questions whose
column mention is semantic rather than literal ("when did" → date,
"where was" → venue, "golfer" → player, "driver won" → winning driver),
the trained classifier's gradient-norm influence profile concentrates
on the mentioning words, and the located span overlaps the gold
mention.  Profiles are printed as ASCII bars, word- vs character-level
separately (Figure 5's two series).
"""

from __future__ import annotations

import numpy as np

import common as C
from repro.core.mention import compute_influence, locate_mention
from repro.text import tokenize

# The Table I archetypes, regenerated on our domains.
_CASES = [
    ("date", "when did the denver eagles play at home ?", "games"),
    ("venue", "where was the game played on may 20 2006 ?", "games"),
    ("player", "who is the golfer that golfs for scotland ?", "golf"),
    ("winning driver", "which driver won the boston grand prix ?", "racing"),
]


def _bars(values, width: int = 24) -> list[str]:
    peak = max(float(v) for v in values) or 1.0
    return ["#" * max(1, int(width * float(v) / peak)) for v in values]


def test_table1_case_studies(benchmark):
    classifier = C.full_nlidb().annotator.column_classifier

    def run_cases():
        out = []
        for column, question, _domain in _CASES:
            tokens = tokenize(question)
            profile = compute_influence(classifier, tokens, tokenize(column))
            span = locate_mention(profile)
            out.append((column, tokens, profile, span))
        return out

    results = benchmark.pedantic(run_cases, rounds=1, iterations=1)

    C.print_header("Table I — mention detection case studies")
    hits = 0
    for column, tokens, profile, (start, end) in results:
        located = " ".join(tokens[start:end])
        C.print_row(f"column {column!r}", f"located: {located!r}")
        decision = C.full_nlidb().annotator.column_classifier.predict_proba(
            tokens, tokenize(column))
        hits += decision > 0.5
    # The classifier should flag at least half of these semantic
    # mentions (only meaningful at standard training scale; the paper's
    # full-scale model detects all four).
    if C.strict_shape():
        assert hits >= len(_CASES) // 2


def test_fig5_fig7_influence_profiles(benchmark):
    classifier = C.full_nlidb().annotator.column_classifier
    column, question, _ = _CASES[3]  # Figure 5's "winning driver"
    tokens = tokenize(question)

    profile = benchmark.pedantic(
        lambda: compute_influence(classifier, tokens, tokenize(column),
                                  alpha=1.0, beta=1.0),
        rounds=1, iterations=1)

    C.print_header(f"Figure 5/7 — influence profile for column {column!r}")
    word_bars = _bars(profile.word_influence)
    char_bars = _bars(profile.char_influence)
    for token, wb, cb in zip(tokens, word_bars, char_bars):
        C.print_row(token, f"word {wb:<24} char {cb}")

    # Both series exist and are non-negative (Figure 5's two inputs).
    assert (profile.word_influence >= 0).all()
    assert (profile.char_influence >= 0).all()
    assert profile.word_influence.sum() > 0
    assert profile.char_influence.sum() > 0

    # The located span should avoid pure stop words.
    start, end = locate_mention(profile)
    from repro.text import is_stop_word
    assert not all(is_stop_word(t) for t in tokens[start:end])
