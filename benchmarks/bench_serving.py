"""Serving-layer smoke benchmark: cold vs warm vs batched latency.

Replays the dev slice through a :class:`TranslationService` three ways —
cold (empty cache), warm (every request a cache hit), and batched via
``translate_batch`` on a fresh service — and prints one JSON record with
per-request latencies plus the service's own metrics snapshot.

The assertion is deliberately generous: the warm path must be at least
2× faster per request than the cold path (in practice it is orders of
magnitude faster, since a hit skips annotation and beam search
entirely).  Differential equality of the three paths is covered by
``tests/serving/test_differential.py``; this module only watches the
speed shape.
"""

from __future__ import annotations

import json
from time import perf_counter

import common as C
from repro.serving import TranslationService


def _corpus():
    examples = C.dataset().dev[:C.scale().eval_limit]
    return [(e.question_tokens, e.table) for e in examples]


def _per_request(seconds: float, n: int) -> float:
    return seconds / max(n, 1)


def test_serving_cold_warm_batched(benchmark):
    model = C.full_nlidb()
    corpus = _corpus()

    def measure():
        service = TranslationService(model)
        start = perf_counter()
        for question, table in corpus:
            service.translate(question, table)
        cold = perf_counter() - start

        start = perf_counter()
        for question, table in corpus:
            service.translate(question, table)
        warm = perf_counter() - start

        batch_service = TranslationService(model)
        start = perf_counter()
        batch_service.translate_batch(corpus)
        batched = perf_counter() - start
        return cold, warm, batched, service.stats()

    cold, warm, batched, stats = benchmark.pedantic(measure, rounds=1,
                                                    iterations=1)
    n = len(corpus)
    record = {
        "requests": n,
        "cold_s_per_request": _per_request(cold, n),
        "warm_s_per_request": _per_request(warm, n),
        "batched_cold_s_per_request": _per_request(batched, n),
        "warm_speedup": cold / max(warm, 1e-12),
        "service_stats": stats,
    }
    print(json.dumps(record, indent=2, sort_keys=True))

    C.print_header("Serving — cold vs warm vs batched (per request)")
    C.print_row("cold", f"{record['cold_s_per_request'] * 1e3:.2f} ms")
    C.print_row("warm (cache hit)",
                f"{record['warm_s_per_request'] * 1e3:.2f} ms")
    C.print_row("batched (cold cache)",
                f"{record['batched_cold_s_per_request'] * 1e3:.2f} ms")
    C.print_row("warm speedup", f"{record['warm_speedup']:.1f}x")

    # Counters stay consistent across both services' traffic.
    counters = stats["counters"]
    assert counters["cache_hits"] + counters["cache_misses"] \
        == counters["requests"]
    # The warm path must beat cold by a wide margin; 2x is the floor.
    assert record["warm_speedup"] >= 2.0
