"""Serving-layer smoke benchmark: cold vs warm vs batched latency.

Replays the dev slice through a :class:`TranslationService` three ways —
cold (empty cache), warm (every request a cache hit), and batched via
``translate_batch`` on a fresh service — and prints one JSON record with
per-request latencies plus the service's own metrics snapshot.

The assertion is deliberately generous: the warm path must be at least
2× faster per request than the cold path (in practice it is orders of
magnitude faster, since a hit skips annotation and beam search
entirely).  Differential equality of the three paths is covered by
``tests/serving/test_differential.py``; this module only watches the
speed shape.
"""

from __future__ import annotations

import json
from time import perf_counter

import common as C
from repro.serving import (
    FaultInjector,
    FaultSpec,
    FaultyNLIDB,
    ResiliencePolicy,
    TranslationService,
)


def _corpus():
    examples = C.dataset().dev[:C.scale().eval_limit]
    return [(e.question_tokens, e.table) for e in examples]


def _per_request(seconds: float, n: int) -> float:
    return seconds / max(n, 1)


def test_serving_cold_warm_batched(benchmark):
    model = C.full_nlidb()
    corpus = _corpus()

    def measure():
        service = TranslationService(model)
        outcomes = {"ok": 0, "degraded": 0, "failed": 0}
        start = perf_counter()
        for question, table in corpus:
            outcomes[service.translate(question, table).status] += 1
        cold = perf_counter() - start

        start = perf_counter()
        for question, table in corpus:
            service.translate(question, table)
        warm = perf_counter() - start

        batch_service = TranslationService(model)
        start = perf_counter()
        batch_service.translate_batch(corpus)
        batched = perf_counter() - start
        return cold, warm, batched, service.stats(), outcomes

    cold, warm, batched, stats, outcomes = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    n = len(corpus)
    record = {
        "requests": n,
        "cold_s_per_request": _per_request(cold, n),
        "warm_s_per_request": _per_request(warm, n),
        "batched_cold_s_per_request": _per_request(batched, n),
        "warm_speedup": cold / max(warm, 1e-12),
        "cold_outcomes": outcomes,
        "service_stats": stats,
    }
    print(json.dumps(record, indent=2, sort_keys=True))

    C.print_header("Serving — cold vs warm vs batched (per request)")
    C.print_row("cold", f"{record['cold_s_per_request'] * 1e3:.2f} ms")
    C.print_row("warm (cache hit)",
                f"{record['warm_s_per_request'] * 1e3:.2f} ms")
    C.print_row("batched (cold cache)",
                f"{record['batched_cold_s_per_request'] * 1e3:.2f} ms")
    C.print_row("warm speedup", f"{record['warm_speedup']:.1f}x")

    # Counters stay consistent across both services' traffic.
    counters = stats["counters"]
    assert counters["cache_hits"] + counters["cache_misses"] \
        == counters["requests"]
    # Every request came back as a structured envelope, and the outcome
    # counters partition the request stream (resilient-serving contract).
    assert sum(outcomes.values()) == n
    assert counters.get("served_ok", 0) + counters.get("served_degraded", 0) \
        + counters.get("served_failed", 0) == counters["requests"]
    # A healthy model serves no degraded traffic and the breaker stays shut.
    assert counters.get("served_degraded", 0) == 0
    assert stats["breaker"]["state"] == "closed"
    # The warm path must beat cold by a wide margin; 2x is the floor.
    assert record["warm_speedup"] >= 2.0


def test_serving_degraded_ladder(benchmark):
    """Latency and availability of the context-free degraded rung.

    With the full annotation rung knocked out by injected permanent
    faults, every request must still come back structured, and the
    degraded (matcher-only) annotation must not be slower than the full
    adversarial path — it skips both classifiers.
    """
    model = C.full_nlidb()
    corpus = _corpus()

    def measure():
        injector = FaultInjector(
            [FaultSpec(stage="annotate", kind="permanent", mode="full")])
        service = TranslationService(
            FaultyNLIDB(model, injector),
            policy=ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                                    breaker_failure_threshold=10 ** 9))
        start = perf_counter()
        results = service.translate_batch(corpus)
        elapsed = perf_counter() - start
        return elapsed, results, service.stats()

    elapsed, results, stats = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    n = len(corpus)
    degraded = sum(1 for r in results if r.status == "degraded")
    record = {
        "requests": n,
        "degraded_s_per_request": _per_request(elapsed, n),
        "degraded_served": degraded,
        "failed_served": sum(1 for r in results if r.status == "failed"),
        "degraded_annotate_mean_s":
            stats["histograms"].get("degraded.annotate", {}).get("mean_s"),
    }
    print(json.dumps(record, indent=2, sort_keys=True))

    C.print_header("Serving — degraded (context-free) ladder rung")
    C.print_row("per request",
                f"{record['degraded_s_per_request'] * 1e3:.2f} ms")
    C.print_row("served degraded", f"{degraded}/{n}")

    # The resilient-serving contract: zero escaped exceptions, every
    # envelope accounted for, and some SQL still recovered.
    assert all(r.status in ("degraded", "failed") for r in results)
    assert degraded >= 1
