"""Sharded serving-cluster benchmark: consistent-hash vs random routing.

Drives a seeded mixed-tenant request stream (every dev table is a
tenant; passes interleave tenants in a shuffled order) through
``ClusterService`` fleets of 1 / 2 / 4 worker replicas, each replica a
*separately loaded* model instance so its schema-encoding cache is
genuinely its own.  Writes one ``BENCH_cluster.json`` record at the
repo root with sustained QPS, client-side p50/p95/p99, the rejection
count, and per-replica schema-cache hit rates per cell.

The two headline claims it gates:

* **sharded routing beats random routing on schema-cache hit rate** at
  4 replicas — rendezvous hashing pins each tenant's fingerprint to
  one replica, so repeat passes hit that replica's warm
  ``SchemaEncoding`` cache, while the seeded ``RandomRouter`` control
  sprays the same stream into cold misses across the fleet;
* **admission control is invisible below the threshold** — every main
  cell runs under ``max_in_flight`` and must record zero rejections,
  while a deliberately tiny-bound probe cell must reject with
  structured retryable ``Overloaded`` envelopes and still serve what
  it admitted.

Every benchmark request is differentially checked against the direct
``NLIDB.translate`` SQL of the trained model the fleet was saved from,
so routing wins can never be bought with wrong answers.  ``cache_size=1``
per replica keeps the translation LRU out of the measurement (the
schema cache is the unit under test).
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import numpy as np

import common as C
from repro.core.persistence import load_nlidb, save_nlidb
from repro.serving import ClusterPolicy, ClusterService, RandomRouter

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

REPLICA_COUNTS = (1, 2, 4)
CLIENTS = 8
PASSES = 3
STREAM_SEED = 11

#: Accumulated across the module's tests; rewritten after each one so a
#: partial run still leaves a valid JSON artifact.
RECORD: dict = {"scale": None}


def _write_record() -> None:
    RECORD["scale"] = "standard" if C.strict_shape() else "smoke"
    RESULT_PATH.write_text(json.dumps(RECORD, indent=2, sort_keys=True))
    print(json.dumps(RECORD, indent=2, sort_keys=True))


def _percentiles(samples: list[float]) -> dict:
    arr = np.array(samples)
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p95_ms": float(np.percentile(arr, 95) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3)}


def _references(model):
    """The tenant pool plus the direct sequential-path SQL per pair."""
    refs = []
    for example in C.dataset().dev[:C.scale().eval_limit]:
        translation = model.translate(example.question_tokens, example.table)
        sql = translation.query.to_sql() if translation.query is not None \
            else None
        refs.append((example, sql))
    return refs


def _stream(references, passes: int, seed: int):
    """Seeded mixed-tenant load: each pass re-shuffles tenant order."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(passes):
        order = rng.permutation(len(references))
        stream.extend(references[int(i)] for i in order)
    return stream


def _fresh_fleet(model_dir: Path, n: int):
    """``n`` independently loaded instances — cold caches, own memory."""
    return [load_nlidb(model_dir) for _ in range(n)]


def _load_run(fleet, stream, router_factory=None) -> dict:
    """One (fleet size, router) cell of the benchmark matrix."""
    cluster = ClusterService(
        fleet, policy=ClusterPolicy(max_in_flight=256),
        cache_size=1, router_factory=router_factory)
    shards = [stream[i::CLIENTS] for i in range(CLIENTS)]
    shards = [shard for shard in shards if shard]

    def client(shard):
        latencies = []
        for example, sql in shard:
            start = perf_counter()
            result = cluster.translate(example.question_tokens,
                                       example.table)
            latencies.append(perf_counter() - start)
            assert result.sql == sql  # differential guard
            assert result.replica_id is not None
        return latencies

    start = perf_counter()
    with ThreadPoolExecutor(max_workers=len(shards)) as pool:
        futures = [pool.submit(client, shard) for shard in shards]
        latencies = [sample for f in futures for sample in f.result()]
    wall = perf_counter() - start
    stats = cluster.stats()
    cluster.close()

    schema = {rid: replica["service"]["schema_cache"]
              for rid, replica in stats["replicas"].items()}
    hits = sum(s["hits"] for s in schema.values())
    misses = sum(s["misses"] for s in schema.values())
    return {
        "replicas": len(fleet),
        "router": stats["router"]["kind"],
        "requests": len(latencies),
        "wall_s": wall,
        "qps": len(latencies) / wall,
        **_percentiles(latencies),
        "rejections": stats["counters"].get("rejections", 0),
        "failovers": stats["counters"].get("failovers", 0),
        "schema_cache_hit_rate": hits / max(hits + misses, 1),
        "per_replica_hit_rate": {rid: s["hit_rate"]
                                 for rid, s in schema.items()},
    }


def test_cluster_sharded_vs_random_routing(benchmark, tmp_path):
    model = C.full_nlidb()
    model_dir = tmp_path / "weights"
    save_nlidb(model, model_dir)
    references = _references(model)
    stream = _stream(references, PASSES, STREAM_SEED)

    def measure():
        cells = {}
        for n in REPLICA_COUNTS:
            cells[f"sharded@{n}"] = _load_run(
                _fresh_fleet(model_dir, n), stream)
        cells["random@4"] = _load_run(
            _fresh_fleet(model_dir, 4), stream,
            router_factory=lambda ids: RandomRouter(ids, seed=0))
        return cells

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    RECORD["tenants"] = len({e.table.name for e, _ in references})
    RECORD["corpus_pairs"] = len(references)
    RECORD["passes"] = PASSES
    RECORD["clients"] = CLIENTS
    RECORD["cells"] = cells
    sharded = cells["sharded@4"]["schema_cache_hit_rate"]
    random = cells["random@4"]["schema_cache_hit_rate"]
    RECORD["sharded_vs_random_hit_rate_delta"] = sharded - random
    _write_record()

    C.print_header("Cluster — sharded vs random routing, mixed tenants")
    for name, cell in cells.items():
        C.print_row(
            name,
            f"{cell['qps']:.1f} qps, p50 {cell['p50_ms']:.1f} ms, "
            f"p99 {cell['p99_ms']:.1f} ms, "
            f"schema hits {cell['schema_cache_hit_rate']:.0%}")
    C.print_row("sharded@4 - random@4 hit rate",
                f"{sharded - random:+.0%}")

    # Below the admission threshold nothing is ever rejected.
    for cell in cells.values():
        assert cell["rejections"] == 0
    # Consistent hashing keeps every repeat pass on a warm replica, so
    # sharded hit rate is pinned by stream shape: all but the first
    # touch of each (question, tenant) pair hit.  Random routing at 4
    # replicas spreads those touches and must land strictly below —
    # the measured value of the router, asserted at every scale.
    assert sharded > random
    for n in REPLICA_COUNTS:
        assert cells[f"sharded@{n}"]["schema_cache_hit_rate"] > 0.5
    if C.strict_shape():
        # Standard scale has enough tenants for a decisive margin.
        assert sharded - random >= 0.1


def test_cluster_overload_rejects_with_structured_envelopes(tmp_path):
    model = C.full_nlidb()
    model_dir = tmp_path / "weights"
    save_nlidb(model, model_dir)
    references = _references(model)[:12]
    cluster = ClusterService(
        _fresh_fleet(model_dir, 1),
        policy=ClusterPolicy(max_in_flight=1), cache_size=1)
    try:
        futures = [cluster.submit(example.question_tokens, example.table)
                   for example, _ in references]
        results = [f.result(timeout=120) for f in futures]
    finally:
        cluster.close()
    rejected = [r for r in results
                if r.status == "failed"
                and r.error["type"] == "Overloaded"]
    served = [r for r in results if r.sql is not None]
    assert served, "the admitted request must still serve"
    assert rejected, "a 1-deep admission bound must reject a 12-burst"
    for result in rejected:
        assert result.error["retryable"] is True
        assert result.trace[0].stage == "route"
    RECORD["overload_probe"] = {
        "burst": len(references),
        "served": len(served),
        "rejected": len(rejected),
    }
    _write_record()
