"""Benchmark-suite hooks.

Emits the measured paper-vs-reproduction tables after the run; pytest's
default fd-level capture would otherwise hide them for passing tests.
"""

import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = common.results_text()
    if text:
        terminalreporter.ensure_newline()
        terminalreporter.section("measured results (paper vs reproduction)")
        terminalreporter.write(text + "\n")
