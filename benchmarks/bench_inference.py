"""Vectorized-inference benchmark: batched kernels vs per-item loops.

Measures the three layers of the inference fast path on the headline
model and writes one ``BENCH_inference.json`` record at the repo root:

* column scoring — K sequential ``predict_proba`` calls vs one
  ``score_columns`` pass over a ≥ 8-column table, cold (encoding built
  per call) and warm (fingerprint-keyed schema-cache hit);
* beam search — the per-beam reference decoder vs the lockstep decoder
  over the dev slice;
* end-to-end serving — per-request latency with a cold vs warm schema
  cache, plus the cache's own counters.

The floors are scale-aware: at ``standard`` the batched column path
must be ≥ 2× the sequential one; at ``smoke`` it only must not lose.

``REPRO_BENCH_ARENA=0`` / ``REPRO_BENCH_QUANT=1`` (the Makefile's
``ARENA`` / ``QUANT`` knobs) select which inference path the end-to-end
cells run on; the beam-search and allocation tests always measure both
sides of the arena comparison.
"""

from __future__ import annotations

import json
import os
import resource
import tracemalloc
from pathlib import Path
from time import perf_counter

import numpy as np

import common as C
from repro.nn import allocation_events
from repro.serving import TranslationService
from repro.sqlengine import Column, DataType, Table
from repro.text import tokenize

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"

#: Inference-path selection (the Makefile's ARENA= / QUANT= knobs).
ARENA = os.environ.get("REPRO_BENCH_ARENA", "1") != "0"
QUANT = os.environ.get("REPRO_BENCH_QUANT", "0") == "1"

#: Accumulated across the module's tests; rewritten after each one so a
#: partial run still leaves a valid JSON artifact.
RECORD: dict = {"scale": None,
                "inference_flags": {"arena": ARENA, "quantized": QUANT}}


def _write_record() -> None:
    RECORD["scale"] = "standard" if C.strict_shape() else "smoke"
    RECORD["peak_rss_mb"] = _peak_rss_mb()
    RESULT_PATH.write_text(json.dumps(RECORD, indent=2, sort_keys=True))
    print(json.dumps(RECORD, indent=2, sort_keys=True))


def _peak_rss_mb() -> float:
    """Process peak resident set size in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _set_arena(model, enabled: bool, quantized: bool = False) -> None:
    """Flip every inference-path switch of a fitted model together."""
    model.config.arena_inference = enabled
    model.config.quantized_scoring = quantized and enabled
    model.config.seq2seq.arena_inference = enabled
    classifier = model.annotator.column_classifier
    classifier.arena_inference = enabled
    classifier.quantized_scoring = quantized and enabled


def wide_table(columns: int = 10, rows: int = 8) -> Table:
    """A deterministic ≥ 8-column table for the annotation benchmark."""
    names = ["player name", "team", "games played", "points scored",
             "assists", "rebounds", "season year", "home city",
             "jersey number", "position", "minutes", "salary"][:columns]
    cols = [Column(n, DataType.REAL if i % 2 else DataType.TEXT)
            for i, n in enumerate(names)]
    data = [tuple(f"v{r}c{c}" if c % 2 == 0 else float(r * 10 + c)
                  for c in range(columns)) for r in range(rows)]
    return Table("stats", columns=cols, rows=data)


def _percentiles(samples: list[float]) -> dict:
    arr = np.array(samples)
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p95_ms": float(np.percentile(arr, 95) * 1e3)}


def test_batched_column_scoring(benchmark):
    model = C.full_nlidb()
    classifier = model.annotator.column_classifier
    _set_arena(model, ARENA, QUANT)
    table = wide_table()
    columns = [tokenize(name) for name in table.column_names]
    questions = [e.question_tokens
                 for e in C.dataset().dev[:C.scale().eval_limit]]

    def measure():
        start = perf_counter()
        for question in questions:
            for col in columns:
                classifier.predict_proba(question, col)
        sequential = perf_counter() - start

        start = perf_counter()
        for question in questions:
            classifier.score_columns(question, columns)
        batched_cold = perf_counter() - start

        encoded = classifier.encode_columns(columns)
        start = perf_counter()
        for question in questions:
            classifier.score_columns(question, encoded=encoded)
        batched_warm = perf_counter() - start

        # int8 frozen-head scoring: warm timing + parity vs float32.
        quantized = None
        if ARENA:
            f32_scores = [classifier.score_columns(q, encoded=encoded)
                          for q in questions]
            classifier.quantized_scoring = True
            start = perf_counter()
            q8_scores = [classifier.score_columns(q, encoded=encoded)
                         for q in questions]
            warm_q8 = perf_counter() - start
            classifier.quantized_scoring = QUANT
            delta = max(float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
                        for a, b in zip(f32_scores, q8_scores))
            quantized = (warm_q8, delta)
        return sequential, batched_cold, batched_warm, quantized

    sequential, cold, warm, quantized = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    n = len(questions)
    RECORD["column_scoring"] = {
        "columns": len(columns),
        "questions": n,
        "sequential_s_per_question": sequential / n,
        "batched_cold_s_per_question": cold / n,
        "batched_warm_s_per_question": warm / n,
        "batched_speedup": sequential / max(cold, 1e-12),
        "warm_speedup": sequential / max(warm, 1e-12),
        "int8": None if quantized is None else {
            "warm_s_per_question": quantized[0] / n,
            "max_abs_score_delta": quantized[1],
        },
    }
    _write_record()

    C.print_header(f"Annotation — {len(columns)}-column table, batched "
                   "vs per-column (per question)")
    C.print_row("sequential predict_proba", f"{sequential / n * 1e3:.2f} ms")
    C.print_row("score_columns (cold)", f"{cold / n * 1e3:.2f} ms")
    C.print_row("score_columns (cached schema)", f"{warm / n * 1e3:.2f} ms")
    C.print_row("batched speedup",
                f"{RECORD['column_scoring']['batched_speedup']:.2f}x")
    if quantized is not None:
        C.print_row("int8 max score delta", f"{quantized[1]:.2e}")

    floor = 2.0 if C.strict_shape() else 1.0
    assert RECORD["column_scoring"]["batched_speedup"] >= floor
    assert warm <= cold * 1.1  # reusing the encoding can only help
    if quantized is not None:
        assert quantized[1] <= 1e-4  # int8 scores within the pin


def test_lockstep_beam_search(benchmark):
    model = C.full_nlidb()
    examples = C.dataset().dev[:C.scale().eval_limit]
    prepared = []
    for example in examples:
        annotation = model.annotate(example.question_tokens, example.table)
        prepared.append((annotation.annotated_tokens(
            append=model.config.column_name_appending,
            header_encoding=model.config.header_encoding),
            model.header_tokens(example.table),
            model._symbols(annotation)))

    def measure():
        per_beam, lockstep, arena = [], [], []
        outputs = []
        for source, headers, symbols in prepared:
            _set_arena(model, False)
            start = perf_counter()
            slow = model.translator.translate(source, headers, symbols,
                                              lockstep=False)
            per_beam.append(perf_counter() - start)
            start = perf_counter()
            fast = model.translator.translate(source, headers, symbols,
                                              lockstep=True)
            lockstep.append(perf_counter() - start)
            _set_arena(model, True)
            start = perf_counter()
            fast32 = model.translator.translate(source, headers, symbols,
                                                lockstep=True)
            arena.append(perf_counter() - start)
            outputs.append((slow, fast, fast32))
        _set_arena(model, ARENA, QUANT)
        return per_beam, lockstep, arena, outputs

    per_beam, lockstep, arena, outputs = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    RECORD["beam_search"] = {
        "pairs": len(prepared),
        "beam_width": model.translator.config.beam_width,
        "per_beam": _percentiles(per_beam),
        "lockstep": _percentiles(lockstep),
        "arena": _percentiles(arena),
        "lockstep_speedup": sum(per_beam) / max(sum(lockstep), 1e-12),
        "arena_speedup": sum(per_beam) / max(sum(arena), 1e-12),
        "arena_vs_lockstep": sum(lockstep) / max(sum(arena), 1e-12),
        "identical_sql": all(slow == fast == fast32
                             for slow, fast, fast32 in outputs),
    }
    _write_record()

    C.print_header("Beam search — per-beam vs lockstep vs float32 arena")
    C.print_row("per-beam p50", f"{RECORD['beam_search']['per_beam']['p50_ms']:.2f} ms")
    C.print_row("lockstep p50", f"{RECORD['beam_search']['lockstep']['p50_ms']:.2f} ms")
    C.print_row("arena p50", f"{RECORD['beam_search']['arena']['p50_ms']:.2f} ms")
    C.print_row("lockstep speedup",
                f"{RECORD['beam_search']['lockstep_speedup']:.2f}x")
    C.print_row("arena speedup",
                f"{RECORD['beam_search']['arena_speedup']:.2f}x")

    assert RECORD["beam_search"]["identical_sql"]
    if C.strict_shape():
        assert RECORD["beam_search"]["lockstep_speedup"] >= 1.0
        assert RECORD["beam_search"]["arena_vs_lockstep"] >= 1.0


def test_allocation_footprint(benchmark):
    """Warm-request allocation counts: tensor path vs arena kernels.

    ``allocations_per_request`` counts substrate Tensor constructions
    (every one wraps a fresh ndarray); the arena path must construct
    none, and its reused slabs must stop growing once warm.  Traced
    Python peak memory per pass rides along for scale.
    """
    model = C.full_nlidb()
    examples = C.dataset().dev[:C.scale().eval_limit]
    prepared = []
    for example in examples:
        annotation = model.annotate(example.question_tokens, example.table)
        prepared.append((annotation.annotated_tokens(
            append=model.config.column_name_appending,
            header_encoding=model.config.header_encoding),
            model.header_tokens(example.table),
            model._symbols(annotation)))

    def measure():
        results = {}
        for label, arena_on in (("tensor", False), ("arena", True)):
            _set_arena(model, arena_on)
            for source, headers, symbols in prepared:  # warm every slab
                model.translator.translate(source, headers, symbols)
            model.translator.arena.reset()
            before = allocation_events()
            tracemalloc.start()
            for source, headers, symbols in prepared:
                model.translator.translate(source, headers, symbols)
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            results[label] = {
                "allocations_per_request":
                    (allocation_events() - before) / len(prepared),
                "traced_peak_kb": peak / 1024.0,
                "arena_grows": model.translator.arena.grows,
            }
        _set_arena(model, ARENA, QUANT)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    tensor, arena = results["tensor"], results["arena"]
    reduction = (tensor["allocations_per_request"]
                 / max(arena["allocations_per_request"], 1.0))
    RECORD["allocation"] = {
        "requests": len(prepared),
        "allocations_per_request": arena["allocations_per_request"],
        "tensor_mode_allocations_per_request":
            tensor["allocations_per_request"],
        "allocation_reduction": reduction,
        "arena_traced_peak_kb": arena["traced_peak_kb"],
        "tensor_traced_peak_kb": tensor["traced_peak_kb"],
        "arena_grows_warm": arena["arena_grows"],
        "arena_bytes": model.translator.arena.stats()["bytes"],
    }
    RECORD["allocations_per_request"] = arena["allocations_per_request"]
    _write_record()

    C.print_header("Allocations — warm translate, tensor vs arena path")
    C.print_row("tensor allocs/request",
                f"{tensor['allocations_per_request']:.0f}")
    C.print_row("arena allocs/request",
                f"{arena['allocations_per_request']:.0f}")
    C.print_row("reduction", f"{reduction:.0f}x")
    C.print_row("warm arena grows", f"{arena['arena_grows']}")

    assert reduction >= 5.0  # the arena must beat the tensor path ≥ 5x
    assert arena["arena_grows"] == 0  # warm slabs never grow


def test_end_to_end_schema_cache(benchmark):
    model = C.full_nlidb()
    _set_arena(model, ARENA, QUANT)
    examples = C.dataset().dev[:C.scale().eval_limit]

    def measure():
        model.annotator._schema_cache.clear()
        service = TranslationService(model)
        cold, warm = [], []
        for example in examples:
            start = perf_counter()
            service.translate(example.question_tokens, example.table)
            cold.append(perf_counter() - start)
        for example in examples:
            # Distinct question, same table: translation-cache miss but
            # schema-cache hit — isolates the schema reuse.
            start = perf_counter()
            service.translate(list(example.question_tokens) + ["please"],
                              example.table)
            warm.append(perf_counter() - start)
        return cold, warm, service.stats()

    cold, warm, stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    n = len(examples)
    RECORD["end_to_end"] = {
        "requests_per_phase": n,
        "cold_schema": _percentiles(cold),
        "warm_schema": _percentiles(warm),
        "qps_warm": n / max(sum(warm), 1e-12),
        "schema_cache": stats["schema_cache"],
        "inference": stats.get("inference"),
    }
    _write_record()

    C.print_header("End to end — schema cache cold vs warm (per request)")
    C.print_row("cold p50", f"{RECORD['end_to_end']['cold_schema']['p50_ms']:.2f} ms")
    C.print_row("warm p50", f"{RECORD['end_to_end']['warm_schema']['p50_ms']:.2f} ms")
    C.print_row("schema-cache hit rate",
                f"{stats['schema_cache']['hit_rate']:.2f}")

    # The warm phase reused every per-table encoding it touched.
    assert stats["schema_cache"]["hits"] >= 1
    assert stats["schema_cache"]["hit_rate"] > 0.0
