"""Micro-batching scheduler benchmark: coalesced vs single-request
serving under concurrent load.

Drives one trained service from 1 / 8 / 32 client threads in two
scheduler configurations — ``max_batch=16`` (cross-request coalescing
on) and ``max_batch=1`` (single-request dispatch through the same
queue, i.e. the pre-scheduler serving shape) — and writes one
``BENCH_scheduler.json`` record at the repo root with sustained QPS
and client-side p50/p95 per cell.

The two headline claims it gates:

* at concurrency 8 the coalesced scheduler sustains **higher QPS**
  than single-request dispatch (the shared column-scoring and lockstep
  decode kernels amortize across lanes);
* at concurrency 1 coalescing costs nothing — p50 stays within 10% of
  the single-request path (natural batching never holds a lone request
  back), with a looser floor at the noisy ``smoke`` scale.

Every benchmark request is also differentially checked against the
direct sequential ``NLIDB.translate`` SQL, so the speed claims can
never be bought with wrong answers.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import numpy as np

import common as C
from repro.serving import SchedulerPolicy, TranslationService

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

CONCURRENCY_LEVELS = (1, 8, 32)

#: Accumulated across the module's tests; rewritten after each one so a
#: partial run still leaves a valid JSON artifact.
RECORD: dict = {"scale": None}


def _write_record() -> None:
    RECORD["scale"] = "standard" if C.strict_shape() else "smoke"
    RESULT_PATH.write_text(json.dumps(RECORD, indent=2, sort_keys=True))
    print(json.dumps(RECORD, indent=2, sort_keys=True))


def _percentiles(samples: list[float]) -> dict:
    arr = np.array(samples)
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p95_ms": float(np.percentile(arr, 95) * 1e3)}


def _references(model):
    """The mixed-table request stream plus its sequential-path SQL."""
    refs = []
    for example in C.dataset().dev[:C.scale().eval_limit]:
        translation = model.translate(example.question_tokens, example.table)
        sql = translation.query.to_sql() if translation.query is not None \
            else None
        refs.append((example, sql))
    return refs


def _load_run(model, references, concurrency: int,
              policy: SchedulerPolicy) -> dict:
    """One (configuration, concurrency) cell of the benchmark matrix.

    ``cache_size=1`` keeps the run model-bound: with disjoint
    per-thread shards the interleaved keys never hit the single-entry
    cache, and no two in-flight requests share a key, so within-batch
    dedup cannot flatter the coalesced numbers.
    """
    service = TranslationService(model, cache_size=1,
                                 scheduler_policy=policy)
    shards = [references[i::concurrency] for i in range(concurrency)]
    shards = [shard for shard in shards if shard]

    def client(shard):
        latencies = []
        for example, sql in shard:
            start = perf_counter()
            result = service.translate(example.question_tokens,
                                       example.table)
            latencies.append(perf_counter() - start)
            assert result.sql == sql  # differential guard
        return latencies

    start = perf_counter()
    with ThreadPoolExecutor(max_workers=len(shards)) as pool:
        futures = [pool.submit(client, shard) for shard in shards]
        latencies = [sample for f in futures for sample in f.result()]
    wall = perf_counter() - start
    service.close()
    stats = service.stats()
    return {
        "requests": len(latencies),
        "wall_s": wall,
        "qps": len(latencies) / wall,
        **_percentiles(latencies),
        "coalesced_requests": stats["counters"].get("coalesced_requests", 0),
        "coalesced_batches": stats["counters"].get("coalesced_batches", 0),
        "max_batch_seen": stats["scheduler"]["max_batch"],
    }


def test_scheduler_throughput_and_latency(benchmark):
    model = C.full_nlidb()
    references = _references(model)
    configs = {
        "batched": SchedulerPolicy(max_batch=16),
        "unbatched": SchedulerPolicy(max_batch=1),
    }

    def measure():
        runs = {name: {} for name in configs}
        for concurrency in CONCURRENCY_LEVELS:
            for name, policy in configs.items():
                runs[name][str(concurrency)] = _load_run(
                    model, references, concurrency, policy)
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    qps_speedup_c8 = runs["batched"]["8"]["qps"] \
        / max(runs["unbatched"]["8"]["qps"], 1e-12)
    p50_ratio_c1 = runs["batched"]["1"]["p50_ms"] \
        / max(runs["unbatched"]["1"]["p50_ms"], 1e-12)
    RECORD["corpus_pairs"] = len(references)
    RECORD["concurrency_levels"] = list(CONCURRENCY_LEVELS)
    RECORD["runs"] = runs
    RECORD["qps_speedup_at_c8"] = qps_speedup_c8
    RECORD["p50_ratio_at_c1"] = p50_ratio_c1
    _write_record()

    C.print_header("Scheduler — coalesced vs single-request dispatch")
    for concurrency in CONCURRENCY_LEVELS:
        cell = str(concurrency)
        C.print_row(
            f"c={concurrency} batched",
            f"{runs['batched'][cell]['qps']:.1f} qps, "
            f"p50 {runs['batched'][cell]['p50_ms']:.1f} ms")
        C.print_row(
            f"c={concurrency} unbatched",
            f"{runs['unbatched'][cell]['qps']:.1f} qps, "
            f"p50 {runs['unbatched'][cell]['p50_ms']:.1f} ms")
    C.print_row("QPS speedup at c=8", f"{qps_speedup_c8:.2f}x")
    C.print_row("p50 ratio at c=1", f"{p50_ratio_c1:.2f}")

    # Under concurrent load, the coalesced kernels actually engaged ...
    assert runs["batched"]["8"]["coalesced_requests"] > 0
    assert runs["batched"]["8"]["max_batch_seen"] >= 2
    # ... and never in the single-request configuration.
    for cell in runs["unbatched"].values():
        assert cell["coalesced_requests"] == 0
        assert cell["max_batch_seen"] <= 1
    if C.strict_shape():
        # Headline: coalescing wins throughput at concurrency 8 and is
        # free at concurrency 1.
        assert qps_speedup_c8 > 1.0
        assert p50_ratio_c1 <= 1.10
    else:
        # Smoke budgets are too noisy for tight ratios; only guard
        # against gross regressions.
        assert qps_speedup_c8 > 0.8
        assert p50_ratio_c1 <= 1.5
