"""Section VII-A.1 — mention-detection accuracy vs TypeSQL.

The paper scores canonical agreement of the WHERE clause's
``$COND_COL``/``$COND_VAL`` pairs: ours 91.8% vs content-sensitive
TypeSQL 87.9% on WikiSQL dev.  We regenerate both numbers on the
WikiSQL-style dev split and assert the ordering (ours ≥ TypeSQL-like,
with slack for sample noise).
"""

from __future__ import annotations

import common as C
from repro.core import mention_detection_accuracy


def test_mention_detection_vs_typesql(benchmark):
    limit = C.scale().eval_limit
    ours_preds = C.predictions("ours", "dev", limit=limit)
    examples = C.dataset().dev[:len(ours_preds)]

    typesql = C.baseline_model("typesql")

    def typesql_inference():
        return [typesql.translate(e.question_tokens, e.table)
                for e in examples]

    typesql_preds = benchmark.pedantic(typesql_inference, rounds=1,
                                       iterations=1)

    ours_acc = mention_detection_accuracy(ours_preds, examples)
    typesql_acc = mention_detection_accuracy(typesql_preds, examples)

    C.print_header("Mention detection ($COND_COL/$COND_VAL) — dev")
    C.print_row("Ours (adversarial pipeline)", f"{ours_acc:.1%}",
                f"{C.PAPER['mention_ours']:.1%}")
    C.print_row("TypeSQL-like (content sensitive)", f"{typesql_acc:.1%}",
                f"{C.PAPER['mention_typesql']:.1%}")
    if C.strict_shape():
        assert ours_acc >= typesql_acc - 0.05
    assert ours_acc > C.scale().mention_min
