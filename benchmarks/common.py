"""Shared artifacts for the benchmark harness.

Training is expensive, so every bench module pulls models, datasets,
and prediction sets from the memoized builders here; each is built at
most once per pytest session.  The benchmark timers measure *inference*
(translation of an evaluation slice); training happens in setup.

Scale is controlled with ``REPRO_BENCH_SCALE``:

* ``standard`` (default) — paper-shaped runs (a few minutes per model);
* ``smoke`` — tiny budgets for CI sanity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.baselines import Seq2SQLBaseline, SQLNetBaseline, TypeSQLBaseline
from repro.core import NLIDB, NLIDBConfig, evaluate
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.core.seq2seq.transformer import TransformerConfig, TransformerTranslator
from repro.data import (
    generate_heldout,
    generate_overnight,
    generate_paraphrase_bench,
    generate_role_typed,
    generate_wikisql_style,
)
from repro.text import WordEmbeddings

__all__ = [
    "scale", "embeddings", "dataset", "full_nlidb", "ablation_nlidb",
    "role_typed_dataset", "extended_nlidb",
    "baseline_model", "predictions", "eval_split", "overnight_data",
    "paraphrase_data", "heldout_data", "transfer_model_factory",
    "print_header", "print_row", "PAPER",
]


@dataclass(frozen=True)
class Scale:
    train_size: int
    dev_size: int
    test_size: int
    classifier_epochs: int
    seq2seq_epochs: int
    hidden: int
    eval_limit: int  # per-split evaluation cap for non-headline models
    # Assertion floors (smoke budgets cannot reach paper-shaped numbers).
    headline_min_qm: float
    transfer_min_qm: float
    mention_min: float
    # Robustness / few-shot transfer benchmark (bench_robustness.py).
    robustness_eval_limit: int
    transfer_shots: tuple[int, ...]
    transfer_domains: int
    heldout_per_domain: int


_SCALES = {
    "standard": Scale(train_size=250, dev_size=60, test_size=60,
                      classifier_epochs=3, seq2seq_epochs=8, hidden=48,
                      eval_limit=50, headline_min_qm=0.35,
                      transfer_min_qm=0.15, mention_min=0.5,
                      robustness_eval_limit=40,
                      transfer_shots=(0, 5, 10, 25), transfer_domains=2,
                      heldout_per_domain=45),
    "smoke": Scale(train_size=50, dev_size=16, test_size=16,
                   classifier_epochs=1, seq2seq_epochs=3, hidden=24,
                   eval_limit=16, headline_min_qm=0.02,
                   transfer_min_qm=0.0, mention_min=0.05,
                   robustness_eval_limit=12,
                   transfer_shots=(0, 5, 10, 25), transfer_domains=2,
                   heldout_per_domain=32),
}


def scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "standard")
    if name not in _SCALES:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")
    return _SCALES[name]


def strict_shape() -> bool:
    """Whether shape orderings should be asserted (standard scale only;
    smoke budgets are too small for model orderings to be meaningful)."""
    return os.environ.get("REPRO_BENCH_SCALE", "standard") == "standard"


@lru_cache(maxsize=1)
def embeddings() -> WordEmbeddings:
    return WordEmbeddings(dim=32, seed=0)


@lru_cache(maxsize=1)
def dataset():
    s = scale()
    return generate_wikisql_style(seed=0, train_size=s.train_size,
                                  dev_size=s.dev_size, test_size=s.test_size)


def _base_config(**overrides) -> NLIDBConfig:
    s = scale()
    cfg = NLIDBConfig(
        classifier_epochs=s.classifier_epochs,
        seq2seq_epochs=s.seq2seq_epochs,
        seq2seq=Seq2SeqConfig(hidden=s.hidden, attention_dim=s.hidden),
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


@lru_cache(maxsize=1)
def full_nlidb() -> NLIDB:
    """The headline model (Annotated Seq2seq, all components on)."""
    model = NLIDB(embeddings(), _base_config())
    model.fit(dataset().train)
    return model


@lru_cache(maxsize=1)
def role_typed_dataset():
    """Role-typed corpus over the extended SQL sketch (all 8 intents)."""
    s = scale()
    return generate_role_typed(seed=0, train_size=s.train_size,
                               dev_size=s.dev_size, test_size=s.test_size)


@lru_cache(maxsize=1)
def extended_nlidb() -> NLIDB:
    """Headline model with the extended output grammar, trained on the
    role-typed corpus (backs ``bench_accuracy.py``)."""
    model = NLIDB(embeddings(), _base_config(extended_grammar=True))
    model.fit(role_typed_dataset().train)
    return model


@lru_cache(maxsize=8)
def ablation_nlidb(name: str) -> NLIDB:
    """Translator-side ablations sharing the headline annotator."""
    s = scale()
    annotator = full_nlidb().annotator
    if name == "half_hidden":
        cfg = _base_config()
        cfg.seq2seq = Seq2SeqConfig(hidden=s.hidden // 2,
                                    attention_dim=s.hidden // 2)
        model = NLIDB(embeddings(), cfg)
    elif name == "no_append":
        model = NLIDB(embeddings(), _base_config(column_name_appending=False))
    elif name == "no_copy":
        cfg = _base_config()
        cfg.seq2seq = Seq2SeqConfig(hidden=s.hidden, attention_dim=s.hidden,
                                    use_copy=False)
        model = NLIDB(embeddings(), cfg)
    elif name == "no_header":
        model = NLIDB(embeddings(), _base_config(header_encoding=False))
    elif name == "transformer":
        translator = TransformerTranslator(
            embeddings(), TransformerConfig(heads=4, layers=1,
                                            ff_hidden=2 * s.hidden))
        model = NLIDB(embeddings(), _base_config(), translator=translator)
    else:
        raise ValueError(f"unknown ablation {name!r}")
    model.fit(dataset().train, reuse_annotator=annotator)
    return model


@lru_cache(maxsize=4)
def baseline_model(name: str):
    """Trained baseline by name: seq2sql | sqlnet | typesql."""
    s = scale()
    train = dataset().train
    if name == "seq2sql":
        model = Seq2SQLBaseline(
            embeddings(), Seq2SeqConfig(hidden=s.hidden,
                                        attention_dim=s.hidden))
        return model.fit(train, epochs=s.seq2seq_epochs)
    if name == "sqlnet":
        return SQLNetBaseline(embeddings()).fit(train, epochs=25)
    if name == "typesql":
        return TypeSQLBaseline(embeddings()).fit(train, epochs=25)
    raise ValueError(f"unknown baseline {name!r}")


_PREDICTION_CACHE: dict[tuple[str, str], list] = {}
_TRANSLATION_CACHE: dict[tuple[str, str], list] = {}


def _nlidb_for(model_key: str) -> NLIDB:
    if model_key == "ours":
        return full_nlidb()
    if model_key.startswith("ablation:"):
        return ablation_nlidb(model_key.split(":", 1)[1])
    raise ValueError(f"{model_key!r} is not an NLIDB model")


def translations(model_key: str, split: str, limit: int | None = None):
    """Full Translation objects of an NLIDB model on a split (memoized)."""
    key = (model_key, split)
    if key not in _TRANSLATION_CACHE:
        model = _nlidb_for(model_key)
        examples = getattr(dataset(), split)
        limit_all = scale().eval_limit if model_key != "ours" else None
        if limit_all is not None:
            examples = examples[:limit_all]
        _TRANSLATION_CACHE[key] = [
            model.translate(e.question_tokens, e.table) for e in examples]
    out = _TRANSLATION_CACHE[key]
    return out if limit is None else out[:limit]


def predictions(model_key: str, split: str, limit: int | None = None):
    """Predicted queries of a model on a split (memoized)."""
    key = (model_key, split)
    if key not in _PREDICTION_CACHE:
        if model_key == "ours" or model_key.startswith("ablation:"):
            preds = [t.query for t in translations(model_key, split)]
        else:
            model = baseline_model(model_key)
            examples = getattr(dataset(), split)[:scale().eval_limit]
            preds = [model.translate(e.question_tokens, e.table)
                     for e in examples]
        _PREDICTION_CACHE[key] = preds
    preds = _PREDICTION_CACHE[key]
    return preds if limit is None else preds[:limit]


def eval_split(model_key: str, split: str, limit: int | None = None):
    """(EvalResult, predictions, examples) for a model on a split.

    Non-headline models are evaluated on at most ``scale().eval_limit``
    examples; the example slice always matches the prediction list.
    """
    preds = predictions(model_key, split, limit=limit)
    examples = getattr(dataset(), split)[:len(preds)]
    return evaluate(preds, examples), preds, examples


@lru_cache(maxsize=1)
def overnight_data():
    return generate_overnight(seed=1, per_domain=25)


@lru_cache(maxsize=1)
def paraphrase_data():
    return generate_paraphrase_bench(seed=7, n_rows=5)


@lru_cache(maxsize=1)
def heldout_data():
    """Held-out few-shot transfer domains, capped to the scale's count."""
    held = generate_heldout(seed=2, per_domain=scale().heldout_per_domain)
    return dict(sorted(held.items())[:scale().transfer_domains])


def transfer_model_factory() -> NLIDB:
    """A fresh scale-sized NLIDB for one few-shot transfer fit."""
    return NLIDB(WordEmbeddings(dim=32, seed=0), _base_config())


# ----------------------------------------------------------------------
# Paper-reported reference numbers (test split unless noted)
# ----------------------------------------------------------------------

PAPER = {
    "ours": {"lf": 0.756, "qm": 0.756, "ex": 0.836},
    "half_hidden": {"lf": 0.750, "qm": 0.750, "ex": 0.829},
    "no_append": {"lf": 0.745, "qm": 0.745, "ex": 0.821},
    "no_copy": {"lf": 0.744, "qm": 0.744, "ex": 0.819},
    "no_header": {"lf": 0.746, "qm": 0.746, "ex": 0.818},
    "transformer": {"lf": 0.691, "qm": 0.692, "ex": 0.784},
    "seq2sql": {"lf": 0.508, "qm": 0.516, "ex": 0.604},
    "sqlnet": {"lf": None, "qm": 0.613, "ex": 0.680},
    "typesql": {"lf": None, "qm": 0.754, "ex": 0.826},
    "mention_ours": 0.918,
    "mention_typesql": 0.879,
    "overnight": {"basketball": 0.397, "calendar": 0.763, "housing": 0.515,
                  "recipes": 0.818, "restaurants": 0.793, "overall": 0.606},
    "overnight_in_domain": 0.814,
    "paraphrase": {"naive": 0.9649, "syntactic": 0.9298, "lexical": 0.5789,
                   "morphological": 0.8772, "semantic": 0.5614,
                   "missing": 0.0386},
    "recovery": {"ours": (0.750, 0.756), "half_hidden": (0.746, 0.750),
                 "no_header": (0.742, 0.746), "no_append": (0.740, 0.745),
                 "no_copy": (0.738, 0.744)},
}


# Measured tables are buffered here and emitted after the run by the
# pytest_terminal_summary hook in benchmarks/conftest.py — pytest's
# default fd-level capture would otherwise swallow output from passing
# tests.  They are also print()ed normally so failing tests show their
# context inline.
RESULT_LINES: list[str] = []


def _emit(line: str) -> None:
    RESULT_LINES.append(line)
    print(line)


def print_header(title: str) -> None:
    _emit(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def print_row(label: str, measured: str, paper: str = "") -> None:
    suffix = f"   [paper: {paper}]" if paper else ""
    _emit(f"  {label:<34} {measured}{suffix}")


def results_text() -> str:
    """All measured tables produced so far, as one text block."""
    return "\n".join(RESULT_LINES)
